"""Ablation: Algorithm 1's re-request timeout (line 12-13).

The paper leaves the timeout value unspecified.  Against a dead
controller, a shorter timeout produces proportionally more re-requests
before the flow is abandoned; against a healthy controller the timer
should never fire.  This bounds the timeout choice from both sides.
"""

from __future__ import annotations

import pytest
from figutil import plain_run_b

from repro.core import BufferConfig, flow_buffer_256
from repro.experiments import build_testbed
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows

TIMEOUTS = (0.02, 0.05, 0.1)


def _run_with_dead_controller(retry_timeout: float, max_retries: int = 4):
    config = BufferConfig(mechanism="flow-granularity", capacity=64,
                          retry_timeout=retry_timeout,
                          max_retries=max_retries)
    workload = single_packet_flows(mbps(20), n_flows=5,
                                   rng=RandomStreams(2))
    testbed = build_testbed(config, workload, seed=2)
    testbed.channel.bind_controller(lambda message: None)   # dead app
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=2.0)
    mechanism = testbed.mechanism
    stats = (mechanism.retries_sent, mechanism.flows_abandoned)
    testbed.shutdown()
    return stats


def test_retry_timeout_ablation(benchmark, emit):
    lines = ["ablation: Algorithm 1 retry timeout vs a dead controller "
             "(5 flows, max_retries=4)",
             f"{'timeout(s)':>10} {'retries':>8} {'abandoned':>9}"]
    results = {}
    for timeout in TIMEOUTS:
        retries, abandoned = _run_with_dead_controller(timeout)
        results[timeout] = (retries, abandoned)
        lines.append(f"{timeout:>10.3f} {retries:>8d} {abandoned:>9d}")
    emit("ablation_retry_timeout", "\n".join(lines))

    # Every flow retries max_retries times, then is abandoned, for every
    # timeout that fits within the run horizon.
    for retries, abandoned in results.values():
        assert retries == 5 * 4
        assert abandoned == 5

    # Against a HEALTHY controller the timer never fires (timeout far
    # above the control loop's latency).
    healthy = benchmark.pedantic(plain_run_b, args=(flow_buffer_256(),),
                                 kwargs={"rate_mbps": 50},
                                 rounds=1, iterations=1)
    assert healthy.packet_in_retry_count == 0


@pytest.mark.parametrize("timeout", [0.0005])
def test_too_aggressive_timeout_duplicates_requests(benchmark, timeout):
    """A timeout below the control-loop latency re-requests needlessly."""
    config = BufferConfig(mechanism="flow-granularity", capacity=256,
                          retry_timeout=timeout, max_retries=8)

    def run():
        workload = single_packet_flows(mbps(20), n_flows=20,
                                       rng=RandomStreams(3))
        from repro.experiments import run_once
        return run_once(config, workload, seed=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # The loop takes ~1 ms, so a 0.5 ms timer fires at least once per flow.
    assert result.packet_in_retry_count >= 20
    # Retried flows still complete (duplicate releases become errors).
    assert result.completed_flows == result.total_flows
