"""Ablation: reactive (+buffer) vs fully proactive provisioning.

Positions the paper's contribution in the design space its related work
spans: proactive wildcard routing eliminates control traffic entirely
(but gives up per-flow rules and counters); reactive control keeps
per-flow visibility, and the switch buffer is what makes its cost
tolerable.
"""

from __future__ import annotations

from figutil import plain_run_a

from repro.controllersim import ProactiveProvisioner, destination_routes
from repro.core import buffer_256, no_buffer
from repro.experiments import build_testbed
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import HOST1_IP, HOST2_IP, single_packet_flows

RATE = 65
N_FLOWS = 300


def _run_proactive():
    workload = single_packet_flows(mbps(RATE), n_flows=N_FLOWS,
                                   rng=RandomStreams(0))
    testbed = build_testbed(buffer_256(), workload, seed=0)
    ProactiveProvisioner(
        testbed.controller,
        destination_routes(1, {HOST1_IP: 1, HOST2_IP: 2})).provision()
    testbed.sim.run(until=0.01)
    testbed.pktgen.start(at=0.0)
    testbed.sim.run(until=2.0)
    stats = {
        "packet_ins": testbed.switch.agent.packet_ins_sent,
        "control_kb": (testbed.metrics.capture_up.bytes_total
                       + testbed.metrics.capture_down.bytes_total) / 1000,
        "rules": len(testbed.switch.flow_table),
        "delivered": len(testbed.host2.received),
    }
    testbed.shutdown()
    return stats


def test_proactive_vs_reactive_ablation(benchmark, emit):
    proactive = _run_proactive()
    reactive_bare = plain_run_a(no_buffer(), rate_mbps=RATE,
                                n_flows=N_FLOWS)
    reactive_buffered = plain_run_a(buffer_256(), rate_mbps=RATE,
                                    n_flows=N_FLOWS)

    def kb(result):
        return (result.control_load_up_mbps
                + result.control_load_down_mbps) * result.window * 125

    lines = [f"ablation: control-plane strategy at {RATE} Mbps, "
             f"{N_FLOWS} new flows",
             f"{'strategy':<22} {'packet_ins':>10} {'control KB':>10} "
             f"{'rules':>6}",
             f"{'proactive wildcard':<22} {proactive['packet_ins']:>10d} "
             f"{proactive['control_kb']:>10.1f} {proactive['rules']:>6d}",
             f"{'reactive no-buffer':<22} "
             f"{reactive_bare.packet_in_count:>10d} "
             f"{kb(reactive_bare):>10.1f} {N_FLOWS:>6d}",
             f"{'reactive buffer-256':<22} "
             f"{reactive_buffered.packet_in_count:>10d} "
             f"{kb(reactive_buffered):>10.1f} {N_FLOWS:>6d}"]
    emit("ablation_proactive", "\n".join(lines))

    # Proactive: zero requests, constant control cost, but only 2 rules
    # (no per-flow state at all).
    assert proactive["packet_ins"] == 0
    assert proactive["rules"] == 2
    assert proactive["delivered"] == N_FLOWS
    # Reactive keeps per-flow rules; the buffer pays most of its cost.
    assert reactive_buffered.packet_in_count == N_FLOWS
    assert kb(reactive_buffered) < 0.3 * kb(reactive_bare)
    assert proactive["control_kb"] < 0.05 * kb(reactive_buffered)

    result = benchmark.pedantic(_run_proactive, rounds=1, iterations=1)
    assert result["delivered"] == N_FLOWS
