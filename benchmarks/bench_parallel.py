"""Serial vs parallel wall-clock for a multi-rate sweep (repro.parallel).

Times the same (7 rates × 2 repetitions) buffer-256 sweep through the
legacy serial runner and through the parallel engine, verifies the rows
are bit-identical, and records the measured speedup under
``benchmarks/_output/parallel_speedup.txt``.  The ≥2× speedup assertion
only applies on hosts with ≥4 cores — a 1-core container can only
measure the engine's overhead, which is recorded too.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.core import buffer_256
from repro.experiments import sweep, workload_a_factory
from repro.parallel import parallel_sweep

from conftest import BENCH_RATES, BENCH_REPETITIONS, BENCH_WORKLOAD_A_FLOWS


def test_parallel_speedup_recorded(emit):
    factory = workload_a_factory(n_flows=BENCH_WORKLOAD_A_FLOWS)
    cores = os.cpu_count() or 1
    workers = max(2, min(cores, 8))

    start = time.perf_counter()
    serial = sweep(buffer_256(), factory, BENCH_RATES, BENCH_REPETITIONS,
                   base_seed=0)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = parallel_sweep(buffer_256(), factory, BENCH_RATES,
                              BENCH_REPETITIONS, base_seed=0,
                              workers=workers)
    parallel_s = time.perf_counter() - start

    # The headline guarantee: identical rows, not just similar ones.
    assert len(serial.rows) == len(parallel.rows)
    for row_a, row_b in zip(serial.rows, parallel.rows):
        assert dataclasses.asdict(row_a) == dataclasses.asdict(row_b)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    tasks = len(BENCH_RATES) * BENCH_REPETITIONS
    lines = [
        "parallel engine speedup (serial runner vs repro.parallel)",
        f"sweep            : {len(BENCH_RATES)} rates x "
        f"{BENCH_REPETITIONS} reps = {tasks} tasks "
        f"(workload A, {BENCH_WORKLOAD_A_FLOWS} flows, buffer-256)",
        f"cores available  : {cores}",
        f"workers          : {workers}",
        f"serial wall      : {serial_s:.2f} s",
        f"parallel wall    : {parallel_s:.2f} s",
        f"speedup          : {speedup:.2f}x",
        "rows bit-identical: yes",
    ]
    if cores < 4:
        lines.append(f"note: the >=2x target applies on >=4 cores; this "
                     f"host exposes {cores}, so the number above mostly "
                     f"measures pool overhead")
    emit("parallel_speedup", "\n".join(lines))

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x speedup on {cores} cores, got {speedup:.2f}x")
