"""Fig. 6 — controller delay under different sending rates.

Paper targets: no-buffer > buffer-16 > buffer-256 throughout; no-buffer
rises visibly from ~60 Mbps; buffer-256 flat (58 % average reduction).
"""

from __future__ import annotations

from figutil import at_rate, bench_run_a, regenerate

from repro.core import buffer_256, no_buffer, percent_reduction


def test_fig6_controller_delay(benchmark, benefits_data, emit):
    series = regenerate("fig6", benefits_data, emit)
    nb = series["no-buffer"]
    b16 = series["buffer-16"]
    b256 = series["buffer-256"]

    # Ordering holds at every rate.
    for a, b, c in zip(nb, b16, b256):
        assert a > c
        assert b >= c * 0.98
    # No-buffer rises at the high end; buffer-256 stays flat.
    assert at_rate(benefits_data, nb, 95) > 1.15 * at_rate(benefits_data,
                                                           nb, 20)
    assert at_rate(benefits_data, b256, 95) < 1.1 * at_rate(benefits_data,
                                                            b256, 20)
    assert percent_reduction(nb, b256) > 15

    result = bench_run_a(benchmark, no_buffer(), rate_mbps=80)
    assert (result.controller_delay_summary().mean
            > at_rate(benefits_data, b256, 80) / 1000.0)
