"""Table I — the experimental-device inventory, and testbed build cost."""

from __future__ import annotations

from figutil import bench_run_a

from repro.core import buffer_256
from repro.experiments import build_testbed, format_table_1
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


def test_table1_inventory_and_testbed_build(benchmark, emit):
    """Emit the Table I analogue; benchmark testbed assembly."""
    emit("table1", "Table I: experimental devices\n" + format_table_1())

    def build():
        workload = single_packet_flows(mbps(50), n_flows=100,
                                       rng=RandomStreams(0))
        return build_testbed(buffer_256(), workload)

    testbed = benchmark.pedantic(build, rounds=3, iterations=1)
    assert testbed.switch is not None
    assert testbed.controller is not None
    testbed.shutdown()


def test_table1_single_run_cost(benchmark):
    """Wall-clock cost of one full workload-A repetition."""
    result = bench_run_a(benchmark, buffer_256())
    assert result.completed_flows == result.total_flows
