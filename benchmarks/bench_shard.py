"""Shard scaling and transport probes on line:4.

Two sections of ``BENCH_kernel.json`` come out of this script:

**shard_scaling** — the wall time of one fixed line:4 repetition —
serial, then sharded over the fork transport at 1, 2 and 4 workers.
Events/sec uses one instrumented serial run's ``events_executed`` as the
numerator for every configuration: the workload is identical (the verify
mode asserts bit-identity), so the rate ratio IS the wall-time ratio.

**shard_transport** — per-round coordination overhead of each wire
codec (pickle / framed / shm) at 2 fork workers.  The overhead of one
codec is ``(rounds_wall_fork - rounds_wall_inline) / rounds``: the
inline transport runs the identical shard round loop in-process with no
IPC, so the difference is exactly what the transport costs per advance/
reply round — codec time, syscalls, context switches.  Each repetition
interleaves the baseline and every codec back-to-back (the
``paired_ratio`` idea from ``kernelrecord``) so all points see the same
machine state, and best-of-N minima are compared.

Both probes use a *shard-friendly calibration*:
``link_propagation_delay`` raised to 5 ms (WAN-ish inter-site cables)
instead of the default LAN 5 µs.  Propagation delay is the conservative
lookahead, and lookahead is what sharding scales with — at 5 µs the
coordinator synchronizes every few microseconds of simulated time and
null-message overhead swamps any parallelism (DESIGN.md §17 quantifies
when sharding loses).  The serial baseline runs the *identical*
calibration, so the comparison is honest.

Floors are only physical on a multi-core machine: the committed scaling
floor (≥1.8x events/sec at 2 workers) and transport floor (≥3x less
per-round overhead, framed+shm vs pickle) are enforced by
``perf_gate.py`` and the ``--check`` mode below when
``os.cpu_count() >= 2``, and reported as skipped otherwise.  On one
core the workers time-share: the scaling probe measures pure overhead,
and the transport ratio is compressed because the worker-side codec —
which multi-core overlaps across cores but one core serializes — is
charged to the round gap for framed/shm while pickle's parent-side
re-encode/decode dominates only when the parent is the critical path.
The record always stores the measuring machine's core count alongside
the numbers.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py                    # measure
    PYTHONPATH=src python benchmarks/bench_shard.py --update-baseline  # commit
    PYTHONPATH=src python benchmarks/bench_shard.py --check --floor 1.8
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import kernelrecord

SCENARIO = "line:4"
N_FLOWS = 1600
RATE_MBPS = 40.0
SEED = 5
#: Shard-friendly propagation delay (the lookahead): 5 ms WAN-ish cables.
PROPAGATION_DELAY = 5e-3
WORKER_POINTS = (1, 2, 4)
DEFAULT_FLOOR = 1.8

#: Transport-probe workload: lighter than the scaling probe (the probe
#: isolates per-round overhead, not throughput) but dense enough that
#: every round carries real cross-shard traffic.
TRANSPORT_FLOWS = 400
TRANSPORT_WORKERS = 2
TRANSPORT_CODECS = ("pickle", "framed", "shm")
#: Committed floor: pickle per-round overhead / shm per-round overhead.
DEFAULT_TRANSPORT_FLOOR = 3.0


def _calibration():
    from repro.experiments.calibration import default_calibration
    return dataclasses.replace(default_calibration(),
                               link_propagation_delay=PROPAGATION_DELAY)


def _workload():
    from repro.simkit import RandomStreams, mbps
    from repro.trafficgen import single_packet_flows
    return single_packet_flows(mbps(RATE_MBPS), n_flows=N_FLOWS,
                               rng=RandomStreams(SEED))


def _scenario():
    from repro.scenarios import parse_scenario
    return parse_scenario(SCENARIO)


def count_serial_events() -> int:
    """One instrumented serial run's executed-event count."""
    from repro.core import BufferConfig
    from repro.faults import install_faults
    from repro.scenarios import build_scenario
    workload = _workload()
    testbed = build_scenario(_scenario(), BufferConfig(), workload,
                             calibration=_calibration(), seed=SEED)
    install_faults(testbed, None)
    testbed.controller.start_handshake()
    for pktgen in testbed.pktgens:
        pktgen.start(at=0.020)
    testbed.sim.run(until=0.020 + workload.duration + 0.250)
    events = testbed.sim.events_executed
    testbed.shutdown()
    return events


def time_serial(rounds: int) -> float:
    from repro.core import BufferConfig
    from repro.experiments import run_once

    def once():
        run_once(BufferConfig(), _workload(), seed=SEED,
                 calibration=_calibration(), scenario=_scenario())
    return kernelrecord.best_of(once, rounds=rounds)


def time_sharded(workers: int, rounds: int) -> float:
    from repro.core import BufferConfig
    from repro.shard import ShardSpec, run_once_sharded
    spec = _scenario().with_shard(ShardSpec(mode="per-switch",
                                            workers=workers))

    def once():
        run_once_sharded(BufferConfig(), _workload(), seed=SEED,
                         calibration=_calibration(), scenario=spec,
                         transport="fork")
    return kernelrecord.best_of(once, rounds=rounds)


def _transport_workload():
    from repro.simkit import RandomStreams, mbps
    from repro.trafficgen import single_packet_flows
    return single_packet_flows(mbps(RATE_MBPS), n_flows=TRANSPORT_FLOWS,
                               rng=RandomStreams(SEED))


def _transport_run(codec: str, transport: str):
    """One sharded repetition; returns its ShardRunReport."""
    from repro.core import BufferConfig
    from repro.shard import ShardSpec, execute_sharded
    spec = _scenario().with_shard(
        ShardSpec(mode="per-switch", workers=TRANSPORT_WORKERS,
                  transport=codec))
    result = execute_sharded(BufferConfig(), _transport_workload(),
                             seed=SEED, calibration=_calibration(),
                             scenario=spec, transport=transport)
    return result.report


def measure_transport(rounds: int = 5,
                      codecs=TRANSPORT_CODECS) -> dict:
    """Best-of-N per-round overhead for every codec, interleaved.

    Every repetition runs the inline baseline and each fork codec
    back-to-back before the next repetition starts, so all points share
    the machine state of the same time slice; minima are then compared
    across repetitions (``kernelrecord.paired_ratio``'s approach,
    generalized to four workloads).
    """
    points = [("inline", "pickle")] + [("fork", c) for c in codecs]
    best = {}     # (transport, codec) -> min rounds_wall_seconds
    reports = {}  # (transport, codec) -> report of the best repetition
    for _ in range(rounds):
        for transport, codec in points:
            report = _transport_run(codec, transport)
            key = (transport, codec)
            if report.rounds_wall_seconds < best.get(key, float("inf")):
                best[key] = report.rounds_wall_seconds
                reports[key] = report

    baseline = reports[("inline", "pickle")]
    baseline_s = best[("inline", "pickle")]
    section = {
        "scenario": SCENARIO,
        "flows": TRANSPORT_FLOWS,
        "rate_mbps": RATE_MBPS,
        "link_propagation_delay": PROPAGATION_DELAY,
        "workers": TRANSPORT_WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "rounds": baseline.rounds,
        "floor_overhead_ratio_shm": DEFAULT_TRANSPORT_FLOOR,
        "inline_rounds_wall_seconds": round(baseline_s, 6),
        "codecs": {},
    }
    print(f"bench-shard: transport baseline inline {baseline_s:8.3f}s "
          f"rounds_wall ({baseline.rounds} rounds)")
    for codec in codecs:
        report = reports[("fork", codec)]
        wall = best[("fork", codec)]
        overhead_ms = (wall - baseline_s) / max(report.rounds, 1) * 1e3
        section["codecs"][codec] = {
            "rounds_wall_seconds": round(wall, 6),
            "overhead_ms_per_round": round(overhead_ms, 4),
            "serialize_seconds": round(report.serialize_seconds, 6),
            "bytes_total": report.bytes_total,
            "rounds_coalesced": report.rounds_coalesced,
        }
        print(f"bench-shard: transport {codec:>7}/fork {wall:8.3f}s "
              f"rounds_wall -> {overhead_ms:6.3f} ms/round "
              f"({report.bytes_total:,} wire bytes)")
    pickle_ms = section["codecs"]["pickle"]["overhead_ms_per_round"]
    for codec in codecs:
        if codec == "pickle":
            continue
        codec_ms = section["codecs"][codec]["overhead_ms_per_round"]
        ratio = pickle_ms / codec_ms if codec_ms > 0 else float("inf")
        section[f"overhead_ratio_{codec}"] = round(ratio, 3)
        print(f"bench-shard: transport pickle/{codec} overhead ratio "
              f"x{ratio:.2f}")
    return section


def measure(worker_points=WORKER_POINTS, rounds: int = 3) -> dict:
    events = count_serial_events()
    serial_s = time_serial(rounds)
    section = {
        "scenario": SCENARIO,
        "flows": N_FLOWS,
        "rate_mbps": RATE_MBPS,
        "link_propagation_delay": PROPAGATION_DELAY,
        "cpu_count": os.cpu_count() or 1,
        "events": events,
        "floor_workers_2": DEFAULT_FLOOR,
        "serial": {"seconds": round(serial_s, 6),
                   "events_per_sec": round(events / serial_s, 1)},
        "workers": {},
    }
    for workers in worker_points:
        sharded_s = time_sharded(workers, rounds)
        section["workers"][str(workers)] = {
            "seconds": round(sharded_s, 6),
            "events_per_sec": round(events / sharded_s, 1),
            "speedup_vs_serial": round(serial_s / sharded_s, 3),
        }
        print(f"bench-shard: workers={workers}  {sharded_s:8.3f}s  "
              f"x{serial_s / sharded_s:.2f} vs serial "
              f"({events / sharded_s:,.0f} ev/s)")
    print(f"bench-shard: serial            {serial_s:8.3f}s  "
          f"({events / serial_s:,.0f} ev/s, {events:,} events, "
          f"{section['cpu_count']} cores)")
    return section


def merge_into(path: pathlib.Path, section: dict,
               name: str = "shard_scaling") -> None:
    if path.exists():
        record = json.loads(path.read_text())
    else:
        record = {"schema": kernelrecord.CURRENT_SCHEMA, "benchmarks": {}}
    record[name] = section
    kernelrecord.write_record(record, path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds per point (default 3)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the committed BENCH_kernel.json "
                             "(default: the _output copy only)")
    parser.add_argument("--check", action="store_true",
                        help="measure only serial and 2 workers and "
                             "enforce the scaling floor (CI mode)")
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="minimum 2-worker speedup for --check "
                             f"(default {DEFAULT_FLOOR})")
    parser.add_argument("--transport-floor", type=float,
                        default=DEFAULT_TRANSPORT_FLOOR,
                        help="minimum pickle/shm per-round overhead "
                             "ratio for --check "
                             f"(default {DEFAULT_TRANSPORT_FLOOR})")
    args = parser.parse_args(argv)

    if args.check:
        cores = os.cpu_count() or 1
        if cores < 2:
            print(f"bench-shard: check SKIPPED — {cores} CPU core(s); "
                  f"the 2-worker scaling floor and the transport "
                  f"overhead-ratio floor both need a multi-core machine "
                  f"(one core time-shares the workers: scaling measures "
                  f"pure overhead, and the overhead ratio is compressed "
                  f"because worker-side codec time cannot overlap)")
            return 0
        events = count_serial_events()
        serial_s = time_serial(args.rounds)
        sharded_s = time_sharded(2, args.rounds)
        speedup = serial_s / sharded_s
        print(f"bench-shard: serial {serial_s:.3f}s "
              f"({events / serial_s:,.0f} ev/s), 2 workers "
              f"{sharded_s:.3f}s ({events / sharded_s:,.0f} ev/s) — "
              f"x{speedup:.2f} (floor x{args.floor})")
        failed = False
        if speedup < args.floor:
            print("bench-shard: FAIL — 2-worker scaling below floor")
            failed = True
        section = measure_transport(rounds=max(args.rounds, 3))
        ratio = section.get("overhead_ratio_shm", 0.0)
        print(f"bench-shard: transport pickle/shm overhead x{ratio:.2f} "
              f"(floor x{args.transport_floor})")
        if ratio < args.transport_floor:
            print("bench-shard: FAIL — shm per-round overhead ratio "
                  "below floor")
            failed = True
        if failed:
            return 1
        print("bench-shard: PASS")
        return 0

    section = measure(rounds=args.rounds)
    merge_into(kernelrecord.OUTPUT_PATH, section)
    transport = measure_transport(rounds=max(args.rounds, 5))
    merge_into(kernelrecord.OUTPUT_PATH, transport, "shard_transport")
    print(f"bench-shard: wrote {kernelrecord.OUTPUT_PATH}")
    if args.update_baseline:
        merge_into(kernelrecord.BASELINE_PATH, section)
        merge_into(kernelrecord.BASELINE_PATH, transport,
                   "shard_transport")
        print(f"bench-shard: wrote {kernelrecord.BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
