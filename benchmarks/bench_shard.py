"""Shard scaling probe: serial vs 1/2/4-worker sharded on line:4.

Measures the wall time of one fixed line:4 repetition — serial, then
sharded over the fork transport at 1, 2 and 4 workers — and records the
scaling curve as the ``shard_scaling`` section of ``BENCH_kernel.json``.
Events/sec uses one instrumented serial run's ``events_executed`` as the
numerator for every configuration: the workload is identical (the verify
mode asserts bit-identity), so the rate ratio IS the wall-time ratio.

The probe uses a *shard-friendly calibration*: ``link_propagation_delay``
raised to 5 ms (WAN-ish inter-site cables) instead of the default LAN
5 µs.  Propagation delay is the conservative lookahead, and lookahead is
what sharding scales with — at 5 µs the coordinator synchronizes every
few microseconds of simulated time and null-message overhead swamps any
parallelism (DESIGN.md §17 quantifies when sharding loses).  The serial
baseline runs the *identical* calibration, so the comparison is honest.

Speedup is only physical on a multi-core machine: the committed floor
(≥1.4x events/sec at 2 workers) is enforced by ``perf_gate.py`` and the
``--check`` mode below when ``os.cpu_count() >= 2``, and reported as
skipped otherwise — a single-core container time-shares the workers and
measures transport overhead, not scaling.  The record always stores the
measuring machine's core count alongside the numbers.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py                    # measure
    PYTHONPATH=src python benchmarks/bench_shard.py --update-baseline  # commit
    PYTHONPATH=src python benchmarks/bench_shard.py --check --floor 1.4
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import kernelrecord

SCENARIO = "line:4"
N_FLOWS = 1600
RATE_MBPS = 40.0
SEED = 5
#: Shard-friendly propagation delay (the lookahead): 5 ms WAN-ish cables.
PROPAGATION_DELAY = 5e-3
WORKER_POINTS = (1, 2, 4)
DEFAULT_FLOOR = 1.4


def _calibration():
    from repro.experiments.calibration import default_calibration
    return dataclasses.replace(default_calibration(),
                               link_propagation_delay=PROPAGATION_DELAY)


def _workload():
    from repro.simkit import RandomStreams, mbps
    from repro.trafficgen import single_packet_flows
    return single_packet_flows(mbps(RATE_MBPS), n_flows=N_FLOWS,
                               rng=RandomStreams(SEED))


def _scenario():
    from repro.scenarios import parse_scenario
    return parse_scenario(SCENARIO)


def count_serial_events() -> int:
    """One instrumented serial run's executed-event count."""
    from repro.core import BufferConfig
    from repro.faults import install_faults
    from repro.scenarios import build_scenario
    workload = _workload()
    testbed = build_scenario(_scenario(), BufferConfig(), workload,
                             calibration=_calibration(), seed=SEED)
    install_faults(testbed, None)
    testbed.controller.start_handshake()
    for pktgen in testbed.pktgens:
        pktgen.start(at=0.020)
    testbed.sim.run(until=0.020 + workload.duration + 0.250)
    events = testbed.sim.events_executed
    testbed.shutdown()
    return events


def time_serial(rounds: int) -> float:
    from repro.core import BufferConfig
    from repro.experiments import run_once

    def once():
        run_once(BufferConfig(), _workload(), seed=SEED,
                 calibration=_calibration(), scenario=_scenario())
    return kernelrecord.best_of(once, rounds=rounds)


def time_sharded(workers: int, rounds: int) -> float:
    from repro.core import BufferConfig
    from repro.shard import ShardSpec, run_once_sharded
    spec = _scenario().with_shard(ShardSpec(mode="per-switch",
                                            workers=workers))

    def once():
        run_once_sharded(BufferConfig(), _workload(), seed=SEED,
                         calibration=_calibration(), scenario=spec,
                         transport="fork")
    return kernelrecord.best_of(once, rounds=rounds)


def measure(worker_points=WORKER_POINTS, rounds: int = 3) -> dict:
    events = count_serial_events()
    serial_s = time_serial(rounds)
    section = {
        "scenario": SCENARIO,
        "flows": N_FLOWS,
        "rate_mbps": RATE_MBPS,
        "link_propagation_delay": PROPAGATION_DELAY,
        "cpu_count": os.cpu_count() or 1,
        "events": events,
        "floor_workers_2": DEFAULT_FLOOR,
        "serial": {"seconds": round(serial_s, 6),
                   "events_per_sec": round(events / serial_s, 1)},
        "workers": {},
    }
    for workers in worker_points:
        sharded_s = time_sharded(workers, rounds)
        section["workers"][str(workers)] = {
            "seconds": round(sharded_s, 6),
            "events_per_sec": round(events / sharded_s, 1),
            "speedup_vs_serial": round(serial_s / sharded_s, 3),
        }
        print(f"bench-shard: workers={workers}  {sharded_s:8.3f}s  "
              f"x{serial_s / sharded_s:.2f} vs serial "
              f"({events / sharded_s:,.0f} ev/s)")
    print(f"bench-shard: serial            {serial_s:8.3f}s  "
          f"({events / serial_s:,.0f} ev/s, {events:,} events, "
          f"{section['cpu_count']} cores)")
    return section


def merge_into(path: pathlib.Path, section: dict) -> None:
    if path.exists():
        record = json.loads(path.read_text())
    else:
        record = {"schema": kernelrecord.CURRENT_SCHEMA, "benchmarks": {}}
    record["shard_scaling"] = section
    kernelrecord.write_record(record, path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds per point (default 3)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the committed BENCH_kernel.json "
                             "(default: the _output copy only)")
    parser.add_argument("--check", action="store_true",
                        help="measure only serial and 2 workers and "
                             "enforce the scaling floor (CI mode)")
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="minimum 2-worker speedup for --check "
                             f"(default {DEFAULT_FLOOR})")
    args = parser.parse_args(argv)

    if args.check:
        cores = os.cpu_count() or 1
        if cores < 2:
            print(f"bench-shard: check SKIPPED — {cores} CPU core(s); "
                  f"2-worker scaling needs a multi-core machine (the "
                  f"workers time-share and measure only transport "
                  f"overhead)")
            return 0
        events = count_serial_events()
        serial_s = time_serial(args.rounds)
        sharded_s = time_sharded(2, args.rounds)
        speedup = serial_s / sharded_s
        print(f"bench-shard: serial {serial_s:.3f}s "
              f"({events / serial_s:,.0f} ev/s), 2 workers "
              f"{sharded_s:.3f}s ({events / sharded_s:,.0f} ev/s) — "
              f"x{speedup:.2f} (floor x{args.floor})")
        if speedup < args.floor:
            print("bench-shard: FAIL — 2-worker scaling below floor")
            return 1
        print("bench-shard: PASS")
        return 0

    section = measure(rounds=args.rounds)
    merge_into(kernelrecord.OUTPUT_PATH, section)
    print(f"bench-shard: wrote {kernelrecord.OUTPUT_PATH}")
    if args.update_baseline:
        merge_into(kernelrecord.BASELINE_PATH, section)
        print(f"bench-shard: wrote {kernelrecord.BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
