"""Ablations: the ASIC↔CPU bus hypothesis, and flow-table thrashing.

1. **Bus bandwidth.** DESIGN.md attributes the no-buffer switch-delay
   blow-up (Fig. 7) to bus saturation.  If that is the mechanism, widening
   the bus must remove the blow-up with everything else fixed — a direct
   test of the model's explanatory claim.
2. **Flow-table capacity.** The paper's root-cause discussion (§II) pins
   the miss problem on limited flow tables evicting live rules.  With a
   table smaller than the working set, every recurrence misses
   (thrashing); at or above the working set, only first packets miss.
"""

from __future__ import annotations

from figutil import plain_run_a

from repro.controllersim import ControllerConfig
from repro.core import buffer_256, no_buffer
from repro.experiments import TestbedCalibration, run_once
from repro.simkit import RandomStreams, mbps
from repro.switchsim import SwitchConfig
from repro.trafficgen import recurring_flows, single_packet_flows

BUS_RATES_MBPS = (130, 145, 400)


def _run_with_bus(bus_mbps: float):
    calibration = TestbedCalibration(
        switch=SwitchConfig(bus_bandwidth_bps=mbps(bus_mbps)),
        controller=ControllerConfig())
    workload = single_packet_flows(mbps(95), n_flows=300,
                                   rng=RandomStreams(4))
    return run_once(no_buffer(), workload, calibration=calibration, seed=4)


def test_bus_bandwidth_ablation(benchmark, emit):
    rows = {bus: _run_with_bus(bus) for bus in BUS_RATES_MBPS}

    lines = ["ablation: no-buffer switch delay at 95 Mbps vs bus bandwidth",
             f"{'bus(Mbps)':>9} {'switch delay(ms)':>16}"]
    for bus, result in rows.items():
        lines.append(f"{bus:>9} "
                     f"{result.switch_delay_summary().mean * 1e3:>16.2f}")
    emit("ablation_bus_bandwidth", "\n".join(lines))

    delays = [rows[b].switch_delay_summary().mean for b in BUS_RATES_MBPS]
    # Wider bus, smaller delay — monotone.
    assert delays[0] > delays[1] > delays[2]
    # A bus that fits ~2.2x the line rate removes the blow-up entirely.
    assert delays[0] > 5 * delays[2]

    result = benchmark.pedantic(_run_with_bus, args=(400,),
                                rounds=1, iterations=1)
    assert result.switch_delay_summary().mean < 0.002


def test_flow_table_thrashing_ablation(benchmark, emit):
    n_flows, rounds = 20, 5

    def run(table_capacity: int):
        calibration = TestbedCalibration(
            switch=SwitchConfig(flow_table_capacity=table_capacity),
            controller=ControllerConfig())
        workload = recurring_flows(mbps(10), n_flows=n_flows,
                                   rounds=rounds)
        return run_once(buffer_256(), workload, calibration=calibration,
                        seed=5)

    small = run(table_capacity=10)     # half the working set
    large = run(table_capacity=64)     # fits the working set

    emit("ablation_table_capacity",
         "ablation: flow-table capacity vs request count "
         f"({n_flows} flows x {rounds} rounds)\n"
         f"{'capacity':>8} {'packet_ins':>10}\n"
         f"{10:>8} {small.packet_in_count:>10d}\n"
         f"{64:>8} {large.packet_in_count:>10d}")

    # Fits: one miss per flow.  Thrashes: every round misses (LRU on a
    # cyclic access pattern evicts exactly what comes back next).
    assert large.packet_in_count == n_flows
    assert small.packet_in_count == n_flows * rounds
    # Forwarding still completes either way - misses cost, not correctness.
    assert small.completed_flows == n_flows
    assert large.completed_flows == n_flows

    result = benchmark.pedantic(run, args=(10,), rounds=1, iterations=1)
    assert result.packet_in_count == n_flows * rounds
