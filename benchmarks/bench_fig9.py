"""Fig. 9 — control path load: packet- vs flow-granularity (workload B).

Paper targets: flow-granularity stays low and flat in both directions
(one request per flow); packet-granularity grows once the sending rate
passes ~30 Mbps (redundant requests for in-flight flows).  Average
further reductions: 64 % (to controller) and 80 % (to switch).
"""

from __future__ import annotations

from figutil import at_rate, bench_run_b, regenerate

from repro.core import buffer_256, flow_buffer_256, percent_reduction


def test_fig9a_load_to_controller(benchmark, mechanism_data, emit):
    series = regenerate("fig9a", mechanism_data, emit)
    pkt = series["buffer-256"]
    flow = series["flow-buffer-256"]

    # Flow granularity is never worse and clearly better past the knee.
    assert all(f <= p * 1.02 for f, p in zip(flow, pkt))
    assert at_rate(mechanism_data, pkt, 80) > 2 * at_rate(mechanism_data,
                                                          flow, 80)
    # Below the knee (~30 Mbps) the mechanisms coincide.
    assert at_rate(mechanism_data, pkt, 5) == at_rate(mechanism_data,
                                                      flow, 5)
    assert percent_reduction(pkt, flow) > 30

    result = bench_run_b(benchmark, flow_buffer_256(), rate_mbps=80)
    assert result.packet_in_count == result.total_flows


def test_fig9b_load_to_switch(benchmark, mechanism_data, emit):
    series = regenerate("fig9b", mechanism_data, emit)
    pkt = series["buffer-256"]
    flow = series["flow-buffer-256"]

    # Fewer requests -> fewer replies in the reverse direction too.
    assert percent_reduction(pkt, flow) > 30

    result = bench_run_b(benchmark, buffer_256(), rate_mbps=80)
    # Packet granularity sends redundant requests at this rate.
    assert result.packet_in_count > result.total_flows
