"""Ablation: buffer capacity sweep (generalizes Fig. 2/8's 16-vs-256).

The paper's advice is that "the buffer size should be correctly set
according to the traffic patterns".  This ablation sweeps capacities at a
fixed 80 Mbps workload-A rate: undersized buffers degrade to full-frame
requests (higher control load); once capacity exceeds the in-flight churn
(~46 units here), growing it further buys nothing.
"""

from __future__ import annotations

from figutil import plain_run_a

from repro.core import BufferConfig

CAPACITIES = (4, 16, 64, 256)
RATE = 80


def test_buffer_size_ablation(benchmark, emit):
    rows = {}
    for capacity in CAPACITIES:
        config = BufferConfig(mechanism="packet-granularity",
                              capacity=capacity)
        rows[capacity] = plain_run_a(config, rate_mbps=RATE)

    lines = [f"ablation: packet-granularity capacity at {RATE} Mbps "
             f"(workload A)",
             f"{'capacity':>8} {'load_up(Mbps)':>13} {'peak units':>10}"]
    for capacity, result in rows.items():
        lines.append(f"{capacity:>8} {result.control_load_up_mbps:>13.2f} "
                     f"{result.buffer_peak_units:>10d}")
    emit("ablation_buffer_size", "\n".join(lines))

    loads = [rows[c].control_load_up_mbps for c in CAPACITIES]
    # Control load decreases monotonically with capacity...
    assert all(b <= a * 1.02 for a, b in zip(loads, loads[1:]))
    # ...massively from undersized to sufficient...
    assert loads[0] > 2.5 * loads[-1]
    # ...and saturates once the buffer covers the in-flight churn.
    assert loads[-2] < 1.1 * loads[-1]
    # Peak occupancy is pinned at capacity for undersized buffers only.
    assert rows[4].buffer_peak_units == 4
    assert rows[16].buffer_peak_units == 16
    assert rows[256].buffer_peak_units < 256

    # Benchmark the undersized configuration (the expensive case).
    result = benchmark.pedantic(
        plain_run_a, args=(BufferConfig(mechanism="packet-granularity",
                                        capacity=4),),
        kwargs={"rate_mbps": RATE}, rounds=1, iterations=1)
    assert result.completed_flows == result.total_flows
