"""Fig. 10 — controller usage: packet- vs flow-granularity (workload B).

Paper targets: flow-granularity keeps controller usage bounded (below
~30 %); packet-granularity needs more CPU, worst past 70 Mbps; 35.7 %
average reduction.
"""

from __future__ import annotations

from figutil import at_rate, bench_run_b, plain_run_b, regenerate

from repro.core import buffer_256, flow_buffer_256


def test_fig10_controller_usage(benchmark, mechanism_data, emit):
    series = regenerate("fig10", mechanism_data, emit)
    pkt = series["buffer-256"]
    flow = series["flow-buffer-256"]

    # Flow granularity never uses more controller CPU.
    assert all(f <= p * 1.02 for f, p in zip(flow, pkt))
    # The gap is largest at the top rates.
    gap_low = at_rate(mechanism_data, pkt, 20) - at_rate(mechanism_data,
                                                         flow, 20)
    gap_high = at_rate(mechanism_data, pkt, 95) - at_rate(mechanism_data,
                                                          flow, 95)
    assert gap_high > gap_low
    # Flow granularity's usage stays nearly flat across the sweep.
    assert max(flow) - min(flow) < 0.3 * max(pkt)

    pkt_result = plain_run_b(buffer_256(), rate_mbps=95)
    flow_result = bench_run_b(benchmark, flow_buffer_256(), rate_mbps=95)
    assert (flow_result.controller_usage_percent
            < pkt_result.controller_usage_percent)
