"""Fig. 12 — flow setup delay and flow forwarding delay (workload B).

Paper targets: (a) packet-granularity has slightly lower setup delay at
low rates (flow granularity pays extra per-miss work: 2.05 ms vs
1.53 ms), and the gap does not blow up — the proposed mechanism "does
not significantly increase the flow setup delay".  (b) forwarding delay
is similar at low rates, and flow granularity clearly wins at high rates
(37.4 % lower at 95 Mbps; 18 % average) because one packet_out flushes
the whole flow while packet-granularity releases trickle one by one.
"""

from __future__ import annotations

from figutil import at_rate, bench_run_b, plain_run_b, regenerate

from repro.core import (buffer_256, crossover_rate, flow_buffer_256,
                        percent_reduction)


def test_fig12a_flow_setup_delay(benchmark, mechanism_data, emit):
    series = regenerate("fig12a", mechanism_data, emit)
    pkt = series["buffer-256"]
    flow = series["flow-buffer-256"]

    # Packet granularity leads at low rates, but not by much.
    assert at_rate(mechanism_data, pkt, 20) < at_rate(mechanism_data,
                                                      flow, 20)
    assert all(f < 2 * p for f, p in zip(flow, pkt))

    result = bench_run_b(benchmark, flow_buffer_256(), rate_mbps=35)
    assert result.setup_delay_summary().mean < 0.01      # milliseconds


def test_fig12b_flow_forwarding_delay(benchmark, mechanism_data, emit):
    series = regenerate("fig12b", mechanism_data, emit)
    pkt = series["buffer-256"]
    flow = series["flow-buffer-256"]
    rates = list(mechanism_data.rates)

    # Similar at low rates.
    assert at_rate(mechanism_data, flow, 20) < 1.05 * at_rate(
        mechanism_data, pkt, 20)
    # Clear win at the top rate (paper: 37.4% at 95 Mbps).
    reduction_at_95 = 100 * (1 - at_rate(mechanism_data, flow, 95)
                             / at_rate(mechanism_data, pkt, 95))
    assert reduction_at_95 > 10
    # The crossover sits in the upper half of the sweep (paper: ~80).
    crossover = crossover_rate(rates, flow, [p * 0.999 for p in pkt])
    assert crossover is not None and crossover >= 50
    # Positive average reduction (paper: 18%).
    assert percent_reduction(pkt, flow) > 0

    pkt_result = plain_run_b(buffer_256(), rate_mbps=95)
    flow_result = bench_run_b(benchmark, flow_buffer_256(), rate_mbps=95)
    assert (flow_result.forwarding_delay_summary().mean
            < pkt_result.forwarding_delay_summary().mean)
