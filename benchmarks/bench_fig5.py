"""Fig. 5 — flow setup delay under different sending rates.

Paper targets: similar at low rates; past ~70 Mbps no-buffer becomes
large and erratic (max ~30 ms) while buffer-256 stays low and stable
(78 % average reduction).
"""

from __future__ import annotations

from figutil import at_rate, bench_run_a, regenerate

from repro.core import buffer_256, no_buffer, percent_reduction


def test_fig5_flow_setup_delay(benchmark, benefits_data, emit):
    series = regenerate("fig5", benefits_data, emit)
    nb = series["no-buffer"]
    b256 = series["buffer-256"]

    # Low rates: same ballpark (within 2x).
    assert at_rate(benefits_data, nb, 20) < 2 * at_rate(benefits_data,
                                                        b256, 20)
    # High rate: no-buffer blows up, buffer-256 does not.
    assert at_rate(benefits_data, nb, 95) > 3 * at_rate(benefits_data,
                                                        nb, 20)
    assert at_rate(benefits_data, b256, 95) < 1.5 * at_rate(benefits_data,
                                                            b256, 20)
    assert percent_reduction(nb, b256) > 20

    result = bench_run_a(benchmark, no_buffer(), rate_mbps=95)
    assert result.setup_delay_summary().mean > 0


def test_fig5_buffer256_stability(benchmark, benefits_data):
    """The paper highlights buffer-256's small standard deviation."""
    b256 = benefits_data.sweeps["buffer-256"]
    nb = benefits_data.sweeps["no-buffer"]
    b256_std = max(row.setup_delay.std for row in b256.rows)
    nb_std = max(row.setup_delay.std for row in nb.rows)
    assert b256_std < nb_std

    result = bench_run_a(benchmark, buffer_256(), rate_mbps=95)
    assert result.setup_delay_summary().std < 0.002   # < 2 ms spread
