"""Fig. 8 — buffer utilization under different sending rates.

Paper targets: buffer-16 exhausts (pegs at 16 units) once the sending
rate passes ~30 Mbps; buffer-256's usage grows with rate but stays far
below 256 — no more than ~80 units even at the top rate, i.e. an 80 KB
buffer suffices for a 100 Mbps interface.
"""

from __future__ import annotations

from figutil import at_rate, bench_run_a, increasing, regenerate

from repro.core import buffer_16, buffer_256


def test_fig8_buffer_utilization(benchmark, benefits_data, emit):
    series = regenerate("fig8", benefits_data, emit)
    b16 = series["buffer-16"]
    b256 = series["buffer-256"]

    # buffer-16 pegged at its capacity past the knee.
    assert at_rate(benefits_data, b16, 50) == 16
    assert at_rate(benefits_data, b16, 95) == 16
    # buffer-256 grows with rate but never approaches capacity.
    assert increasing(b256, tolerance=2.0)
    assert at_rate(benefits_data, b256, 95) > at_rate(benefits_data,
                                                      b256, 20)
    assert max(b256) < 128        # far below 256 (paper saw <= ~80)

    result = bench_run_a(benchmark, buffer_16(), rate_mbps=80)
    assert result.buffer_peak_units == 16


def test_fig8_buffer256_never_exhausts(benchmark, benefits_data):
    sweep = benefits_data.sweeps["buffer-256"]
    # Exhaustion would show up as degraded (full-frame) packet_ins;
    # with 256 units the load matches exactly one small request per flow.
    for row in sweep.rows:
        assert row.packet_ins_per_flow == 1.0

    result = bench_run_a(benchmark, buffer_256(), rate_mbps=95)
    assert result.buffer_peak_units < 256
