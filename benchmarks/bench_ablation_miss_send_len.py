"""Ablation: ``miss_send_len`` — how much of a buffered packet to send.

The OpenFlow default is 128 bytes; the paper notes "the actual length of
the data field depends on how to configure the parameter of the pkt_in
message" and that a security-minded controller may want the whole packet.
This ablation quantifies the cost of that choice: control-path load and
controller usage scale with the fragment size, converging toward
no-buffer levels at full-frame ``miss_send_len``.
"""

from __future__ import annotations

import pytest
from figutil import plain_run_a

from repro.core import BufferConfig, no_buffer

MISS_SEND_LENS = (64, 128, 512, 1000)
RATE = 65


def test_miss_send_len_ablation(benchmark, emit):
    rows = {}
    for miss_send_len in MISS_SEND_LENS:
        config = BufferConfig(mechanism="packet-granularity", capacity=256,
                              miss_send_len=miss_send_len)
        rows[miss_send_len] = plain_run_a(config, rate_mbps=RATE)
    bare = plain_run_a(no_buffer(), rate_mbps=RATE)

    lines = [f"ablation: miss_send_len at {RATE} Mbps (workload A; "
             f"no-buffer load = {bare.control_load_up_mbps:.2f} Mbps)",
             f"{'miss_send_len':>13} {'load_up(Mbps)':>13} "
             f"{'controller %':>12}"]
    for miss_send_len, result in rows.items():
        lines.append(f"{miss_send_len:>13} "
                     f"{result.control_load_up_mbps:>13.2f} "
                     f"{result.controller_usage_percent:>12.1f}")
    emit("ablation_miss_send_len", "\n".join(lines))

    loads = [rows[m].control_load_up_mbps for m in MISS_SEND_LENS]
    usages = [rows[m].controller_usage_percent for m in MISS_SEND_LENS]
    # Both scale monotonically with the enclosed fragment.
    assert all(b > a for a, b in zip(loads, loads[1:]))
    assert all(b > a for a, b in zip(usages, usages[1:]))
    # Full-frame buffered packet_ins cost as much as no-buffer's on the
    # uplink (same bytes enclosed)...
    assert loads[-1] == pytest.approx(bare.control_load_up_mbps, rel=0.05)
    # ...while the downlink still wins big: packet_out references the
    # buffer instead of enclosing the frame.
    assert (rows[1000].control_load_down_mbps
            < 0.6 * bare.control_load_down_mbps)
    # And the default 128 B is a fraction of full-frame uplink cost.
    assert loads[1] < 0.4 * loads[-1]

    result = benchmark.pedantic(
        plain_run_a,
        args=(BufferConfig(mechanism="packet-granularity", capacity=256,
                           miss_send_len=1000),),
        kwargs={"rate_mbps": RATE}, rounds=1, iterations=1)
    assert result.completed_flows == result.total_flows
