"""Shared helpers for the figure benchmarks."""

from __future__ import annotations

from repro.core import BufferConfig
from repro.experiments import (FIGURES, ExperimentData, figure_series,
                               format_figure, run_once)
from repro.experiments.calibration import prototype_calibration
from repro.metrics import RunMetrics
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import (batched_multi_packet_flows,
                              single_packet_flows)

#: Representative sending rate for single-run benchmarks.
REPRESENTATIVE_RATE = 50


def regenerate(figure_id: str, data: ExperimentData, emit) -> dict:
    """Emit the figure's table and return its per-label series."""
    spec = FIGURES[figure_id]
    emit(figure_id, format_figure(spec, data))
    return figure_series(spec, data)


def bench_run_a(benchmark, config: BufferConfig,
                rate_mbps: float = REPRESENTATIVE_RATE,
                n_flows: int = 300) -> RunMetrics:
    """Benchmark one workload-A testbed run for ``config``."""
    def run() -> RunMetrics:
        workload = single_packet_flows(mbps(rate_mbps), n_flows=n_flows,
                                       rng=RandomStreams(0))
        return run_once(config, workload)
    return benchmark.pedantic(run, rounds=1, iterations=1)


def bench_run_b(benchmark, config: BufferConfig,
                rate_mbps: float = REPRESENTATIVE_RATE) -> RunMetrics:
    """Benchmark one workload-B testbed run for ``config``."""
    def run() -> RunMetrics:
        workload = batched_multi_packet_flows(mbps(rate_mbps),
                                              rng=RandomStreams(0))
        return run_once(config, workload,
                        calibration=prototype_calibration())
    return benchmark.pedantic(run, rounds=1, iterations=1)


def plain_run_a(config: BufferConfig,
                rate_mbps: float = REPRESENTATIVE_RATE,
                n_flows: int = 300) -> RunMetrics:
    """One workload-A run without timing (for comparisons in benches)."""
    workload = single_packet_flows(mbps(rate_mbps), n_flows=n_flows,
                                   rng=RandomStreams(0))
    return run_once(config, workload)


def plain_run_b(config: BufferConfig,
                rate_mbps: float = REPRESENTATIVE_RATE) -> RunMetrics:
    """One workload-B run without timing (for comparisons in benches)."""
    workload = batched_multi_packet_flows(mbps(rate_mbps),
                                          rng=RandomStreams(0))
    return run_once(config, workload, calibration=prototype_calibration())


def increasing(series, tolerance: float = 0.0) -> bool:
    """Is the series (weakly) increasing, allowing ``tolerance`` slack?"""
    return all(b >= a - tolerance for a, b in zip(series, series[1:]))


def at_rate(data: ExperimentData, series: list, rate: float) -> float:
    """Series value at an exact sweep rate."""
    rates = list(data.rates)
    return series[rates.index(rate)]
