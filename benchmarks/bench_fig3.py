"""Fig. 3 — controller usage under different sending rates.

Paper targets: usage grows ~linearly below ~50 Mbps; no-buffer grows
superlinearly after and is the highest; buffer-256 is the lowest and most
stable (37 % average reduction vs no-buffer).
"""

from __future__ import annotations

from figutil import at_rate, bench_run_a, increasing, regenerate

from repro.core import no_buffer, percent_reduction


def test_fig3_controller_usage(benchmark, benefits_data, emit):
    series = regenerate("fig3", benefits_data, emit)
    nb = series["no-buffer"]
    b16 = series["buffer-16"]
    b256 = series["buffer-256"]

    # Ordering at high rate: no-buffer > buffer-16 > buffer-256.
    assert at_rate(benefits_data, nb, 80) > at_rate(benefits_data, b16, 80)
    assert at_rate(benefits_data, b16, 80) > at_rate(benefits_data, b256, 80)
    # Usage grows with rate for every setting.
    assert increasing(nb, tolerance=5.0)
    assert increasing(b256, tolerance=5.0)
    # No-buffer keeps climbing through the top half of the sweep and ends
    # far above its mid-sweep level (the paper's "approximate exponential
    # variation" flattens once the box saturates, as ours does).
    assert at_rate(benefits_data, nb, 95) > 1.3 * at_rate(benefits_data,
                                                          nb, 50)
    # Average reduction (paper: 37%).
    assert percent_reduction(nb, b256) > 25

    result = bench_run_a(benchmark, no_buffer(), rate_mbps=80)
    assert result.controller_usage_percent > 0
