"""Fig. 13 — buffer utilization: packet- vs flow-granularity (workload B).

Paper targets: flow-granularity never uses more than ~5 units (one per
concurrently pending flow — batches are 5 flows); packet-granularity's
usage grows steeply with rate (43 units at 95 Mbps in the paper).
Average utilization improvement: 71.6 %.
"""

from __future__ import annotations

from figutil import at_rate, bench_run_b, regenerate

from repro.core import buffer_256, flow_buffer_256, percent_reduction


def test_fig13a_average_units(benchmark, mechanism_data, emit):
    series = regenerate("fig13a", mechanism_data, emit)
    pkt = series["buffer-256"]
    flow = series["flow-buffer-256"]

    assert all(f <= p + 1e-9 for f, p in zip(flow, pkt))
    # Packet granularity's average occupancy grows steeply with rate.
    assert at_rate(mechanism_data, pkt, 95) > 3 * at_rate(mechanism_data,
                                                          pkt, 20)
    # The improvement claim (paper: 71.6% on average).
    assert percent_reduction(pkt[2:], flow[2:]) > 50

    result = bench_run_b(benchmark, flow_buffer_256(), rate_mbps=95)
    assert result.buffer_avg_units < 5


def test_fig13b_max_units(benchmark, mechanism_data, emit):
    series = regenerate("fig13b", mechanism_data, emit)
    pkt = series["buffer-256"]
    flow = series["flow-buffer-256"]

    # Flow granularity: never above one unit per pending flow (5).
    assert max(flow) <= 5
    # Packet granularity grows well past that at high rates.
    assert at_rate(mechanism_data, pkt, 95) > 2 * max(flow)

    result = bench_run_b(benchmark, buffer_256(), rate_mbps=95)
    assert result.buffer_peak_units > 5
