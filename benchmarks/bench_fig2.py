"""Fig. 2 — control path load under different sending rates.

Paper targets: (a) switch→controller load is ~linear in sending rate for
no-buffer and collapses with the buffer (78.7 % average reduction);
buffer-16 bends upward past its ~30–40 Mbps exhaustion knee.  (b) the
controller→switch direction shows an even larger reduction (96 %).
"""

from __future__ import annotations

from figutil import at_rate, bench_run_a, increasing, regenerate

from repro.core import no_buffer, percent_reduction


def test_fig2a_control_load_to_controller(benchmark, benefits_data, emit):
    series = regenerate("fig2a", benefits_data, emit)
    nb = series["no-buffer"]
    b16 = series["buffer-16"]
    b256 = series["buffer-256"]

    # No-buffer ~linear in rate (a small dip at the top is allowed: the
    # saturated bus caps how fast packet_ins can leave the switch).
    assert increasing(nb, tolerance=5.0)
    assert at_rate(benefits_data, nb, 80) > 3 * at_rate(benefits_data, nb, 20)
    # Buffered: large reduction on average (paper: 78.7%).
    assert percent_reduction(nb, b256) > 60
    # buffer-16 == buffer-256 below the knee, degraded above it.
    assert at_rate(benefits_data, b16, 20) < 1.2 * at_rate(
        benefits_data, b256, 20)
    assert at_rate(benefits_data, b16, 80) > 2 * at_rate(
        benefits_data, b256, 80)

    result = bench_run_a(benchmark, no_buffer())
    assert result.control_load_up_mbps > 0


def test_fig2b_control_load_to_switch(benchmark, benefits_data, emit):
    series = regenerate("fig2b", benefits_data, emit)
    nb = series["no-buffer"]
    b256 = series["buffer-256"]

    # The reverse direction reduction is at least as large (paper: 96%).
    assert percent_reduction(nb, b256) > 60
    # Downlink carries packet_out + flow_mod: no-buffer downlink exceeds
    # its uplink (full frame + rule).
    up = regenerate("fig2a", benefits_data, lambda *a: None)
    assert all(dn >= u for dn, u in zip(nb, up["no-buffer"]))

    result = bench_run_a(benchmark, no_buffer(), rate_mbps=80)
    assert result.control_load_down_mbps > result.control_load_up_mbps
