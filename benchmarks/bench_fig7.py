"""Fig. 7 — switch delay under different sending rates.

Paper targets: no difference below ~75 Mbps; past that, no-buffer's
switch delay blows up (ASIC↔CPU bus saturation — it reached 25 ms at
95 Mbps in the paper); buffer-256 stays low and stable (87 % average
reduction).
"""

from __future__ import annotations

from figutil import at_rate, bench_run_a, regenerate

from repro.core import no_buffer, percent_reduction


def test_fig7_switch_delay(benchmark, benefits_data, emit):
    series = regenerate("fig7", benefits_data, emit)
    nb = series["no-buffer"]
    b256 = series["buffer-256"]

    # Below the bus knee: same ballpark.
    assert at_rate(benefits_data, nb, 50) < 3 * at_rate(benefits_data,
                                                        b256, 50)
    # Past the knee: multi-x blow-up for no-buffer only.
    assert at_rate(benefits_data, nb, 80) > 3 * at_rate(benefits_data,
                                                        nb, 50)
    assert at_rate(benefits_data, nb, 95) > 6 * at_rate(benefits_data,
                                                        nb, 50)
    assert at_rate(benefits_data, b256, 95) < 2 * at_rate(benefits_data,
                                                          b256, 50)
    assert percent_reduction(nb, b256) > 20

    result = bench_run_a(benchmark, no_buffer(), rate_mbps=95)
    # The blow-up is the bus: it must be the dominant delay component.
    assert (result.switch_delay_summary().mean
            > result.controller_delay_summary().mean)
