"""Ablation: egress scheduling disciplines (the paper's future work).

Compares plain FIFO, strict priority and deficit-round-robin egress
scheduling on an overloaded port: expedited latency, best-effort latency,
and whether anything starves.  Quantifies the trade the paper's
conclusion proposes to explore.
"""

from __future__ import annotations

import pytest

from repro.netsim import Link
from repro.packets import (EthernetHeader, IPv4Header, PROTO_UDP, Packet,
                           UDPHeader)
from repro.simkit import Simulator, mbps
from repro.switchsim import (CLASS_BEST_EFFORT, CLASS_EXPEDITED,
                             PriorityEgressScheduler)
from repro.switchsim.qos import DeficitRoundRobinScheduler

N_PER_CLASS = 200
FRAME_LEN = 1000
LINE_RATE = mbps(100)
#: Arrival at 2x line rate: the queue must build.
ARRIVAL_GAP = FRAME_LEN * 8 / mbps(200)


def _packet(dscp, tag):
    eth = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02")
    ip = IPv4Header("10.0.0.1", "10.0.0.2", protocol=PROTO_UDP, dscp=dscp)
    return Packet(eth=eth, ip=ip,
                  l4=UDPHeader(1000 + tag % 1000, 2000),
                  payload_len=FRAME_LEN - 42)


def _run(discipline: str):
    sim = Simulator()
    link = Link(sim, "egress", LINE_RATE, propagation_delay=0.0)
    latencies = {CLASS_EXPEDITED: [], CLASS_BEST_EFFORT: []}

    def on_delivery(packet):
        cls = (CLASS_EXPEDITED if packet.ip.dscp >= 40
               else CLASS_BEST_EFFORT)
        latencies[cls].append(sim.now - packet.created_at)

    link.connect(on_delivery)
    if discipline == "strict":
        scheduler = PriorityEgressScheduler(sim, link)
        send = scheduler.enqueue
    elif discipline == "drr":
        scheduler = DeficitRoundRobinScheduler(
            sim, link, weights={CLASS_EXPEDITED: 3.0,
                                CLASS_BEST_EFFORT: 1.0})
        send = scheduler.enqueue
    else:
        send = lambda packet: link.send(packet, packet.wire_len)  # noqa: E731

    for i in range(N_PER_CLASS):
        for dscp in (46, 0):
            packet = _packet(dscp, i)
            packet.created_at = i * ARRIVAL_GAP
            sim.schedule_at(i * ARRIVAL_GAP, send, packet)
    sim.run(until=60.0)
    mean = {cls: sum(vals) / len(vals) if vals else float("inf")
            for cls, vals in latencies.items()}
    return mean, {cls: len(vals) for cls, vals in latencies.items()}


def test_qos_discipline_ablation(benchmark, emit):
    results = {name: _run(name) for name in ("fifo", "strict", "drr")}

    lines = ["ablation: egress discipline under 2x overload "
             f"({N_PER_CLASS} frames/class)",
             f"{'discipline':>10} {'expedited(ms)':>13} "
             f"{'best-effort(ms)':>15}"]
    for name, (mean, _counts) in results.items():
        lines.append(f"{name:>10} {mean[CLASS_EXPEDITED] * 1e3:>13.2f} "
                     f"{mean[CLASS_BEST_EFFORT] * 1e3:>15.2f}")
    emit("ablation_qos", "\n".join(lines))

    fifo, strict, drr = (results[n][0] for n in ("fifo", "strict", "drr"))
    # FIFO treats both classes identically.
    assert fifo[CLASS_EXPEDITED] == pytest.approx(
        fifo[CLASS_BEST_EFFORT], rel=0.10)
    # Strict priority: expedited far faster, best-effort pays.
    assert strict[CLASS_EXPEDITED] < 0.5 * fifo[CLASS_EXPEDITED]
    assert strict[CLASS_BEST_EFFORT] > fifo[CLASS_BEST_EFFORT]
    # DRR sits between: expedited better than FIFO, best-effort better
    # than under strict priority.
    assert drr[CLASS_EXPEDITED] < fifo[CLASS_EXPEDITED]
    assert drr[CLASS_BEST_EFFORT] < strict[CLASS_BEST_EFFORT]
    # Everything is delivered under every discipline (no starvation loss).
    for _mean, counts in results.values():
        assert counts[CLASS_EXPEDITED] == N_PER_CLASS
        assert counts[CLASS_BEST_EFFORT] == N_PER_CLASS

    timing = benchmark.pedantic(_run, args=("drr",), rounds=1,
                                iterations=1)
    assert timing is not None
