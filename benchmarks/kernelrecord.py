"""The kernel perf record: measuring and writing ``BENCH_kernel.json``.

``BENCH_kernel.json`` (repo root, committed) is the tracked perf
trajectory of the simulation kernel: for each probe it stores the
*before* numbers captured at the pre-optimization commit and the *after*
numbers measured when the record was last regenerated, so future PRs
have a baseline to regress against (see the CI perf-smoke gate in
``perf_gate.py``).

Regenerate with::

    PYTHONPATH=src python benchmarks/bench_simkit.py            # _output copy
    PYTHONPATH=src python benchmarks/bench_simkit.py --update-baseline

Probes use best-of-N ``perf_counter`` wall times (not pytest-benchmark
statistics) so the script is runnable anywhere; absolute numbers are
machine-specific, the committed speedups are the meaningful signal.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Dict, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_kernel.json"
OUTPUT_PATH = pathlib.Path(__file__).resolve().parent / "_output" / "BENCH_kernel.json"

#: Pre-optimization wall times (seconds, best-of-5 perf_counter) captured
#: at commit e902188 — the last commit before the kernel fast-path —
#: on the same machine that produced the committed *after* numbers.
#: ``pktbuf_private`` joined with the shared-pool PR: its *before* is
#: the pool-less PacketBuffer at the last pre-pool commit, so the gate
#: keeps the null-pool store/release path from paying for pooling.
#: ``hybrid_flows`` joined with the hybrid-engine PR and its *before*
#: is different in kind: the **packet engine on the identical
#: workload** (the figscale 10^5-flow point, same machine, workload
#: construction excluded), so the recorded speedup IS the
#: hybrid-vs-packet ratio the engine exists to deliver.
BEFORE_SECONDS = {
    "event_loop": 0.025808,
    "zero_delay_dispatch": 0.038466,
    "station": 0.029756,
    "pktbuf_private": 0.013748,
    "full_testbed": 0.114428,
    "hybrid_flows": 753.517388,
}

#: Work units executed per probe run (events for the chains, jobs for
#: the station, flows for the hybrid scale probe; the testbed probe is
#: measured in simulated seconds).
PROBE_UNITS = {
    "event_loop": 20_000,
    "zero_delay_dispatch": 20_000,
    "station": 10_000,
    "pktbuf_private": 20_000,
    "hybrid_flows": 100_000,
}


def best_of(fn: Callable[[], object], rounds: int = 5) -> float:
    """Minimum wall time of ``rounds`` calls to ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def paired_ratio(base_fn: Callable[[], object],
                 probe_fn: Callable[[], object],
                 rounds: int = 5) -> float:
    """Best-of-N wall-time ratio ``probe/base``, measured interleaved.

    Alternating the two workloads each round exposes them to the same
    CPU-frequency/thermal state, which makes the ratio far more stable
    on noisy machines than two independent :func:`best_of` calls — the
    right tool for self-relative overhead probes (profiler on/off,
    tracer on/off).
    """
    base = probe = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        base_fn()
        base = min(base, time.perf_counter() - t0)
        t0 = time.perf_counter()
        probe_fn()
        probe = min(probe, time.perf_counter() - t0)
    return probe / base


def _rates(name: str, seconds: float,
           window_s: Optional[float] = None) -> Dict[str, float]:
    entry: Dict[str, float] = {"seconds": round(seconds, 6)}
    units = PROBE_UNITS.get(name)
    if units is not None:
        entry["events_per_sec"] = round(units / seconds, 1)
        entry["ns_per_event"] = round(seconds / units * 1e9, 1)
    if window_s is not None:
        entry["testbed_seconds_per_sec"] = round(window_s / seconds, 4)
    return entry


#: Record schemas this toolchain can read.  ``bench-kernel/1`` is the
#: original before/after probe record; ``bench-kernel/2`` adds the
#: per-component ``event_loop`` self-time breakdown and the measured
#: observability-overhead ratios.  New records are written as v2; v1
#: records stay readable (the extra sections are simply absent).
SCHEMAS = ("bench-kernel/1", "bench-kernel/2")
CURRENT_SCHEMA = "bench-kernel/2"


def build_record(after_seconds: Dict[str, float],
                 testbed_window_s: float,
                 components: Optional[Dict[str, float]] = None,
                 obs_overhead: Optional[Dict[str, float]] = None
                 ) -> Dict[str, object]:
    """Assemble the full before/after record from measured wall times.

    ``components`` maps component name -> fraction of sampled self-time
    in a profiled full-testbed run; ``obs_overhead`` carries the
    measured wall-time ratios of the observability layer (profiled /
    plain event loop, traced / plain testbed).  Both are optional so v1
    callers keep working, but the record schema is always written as
    ``bench-kernel/2``.
    """
    benchmarks: Dict[str, object] = {}
    for name, before_s in BEFORE_SECONDS.items():
        # A probe can legitimately be absent from one measuring run
        # (e.g. a quick pass that skips the slow scale probes); keep the
        # record buildable instead of KeyError-ing, and let merge_probe
        # fold the missing number in later.
        if name not in after_seconds:
            continue
        after_s = after_seconds[name]
        window = testbed_window_s if name == "full_testbed" else None
        benchmarks[name] = {
            "units": PROBE_UNITS.get(name, None),
            "before": _rates(name, before_s, window),
            "after": _rates(name, after_s, window),
            "speedup": round(before_s / after_s, 2),
        }
    # After-only probes (no committed *before*) are new measurements
    # that predate their baseline capture — record them rather than
    # silently dropping them.
    for name, after_s in after_seconds.items():
        if name in BEFORE_SECONDS:
            continue
        window = testbed_window_s if name == "full_testbed" else None
        benchmarks[name] = {
            "units": PROBE_UNITS.get(name, None),
            "after": _rates(name, after_s, window),
        }
    record: Dict[str, object] = {
        "schema": CURRENT_SCHEMA,
        "note": ("best-of-N perf_counter wall times; 'before' captured at "
                 "the pre-optimization commit on the same machine. "
                 "Regenerate: PYTHONPATH=src python benchmarks/"
                 "bench_simkit.py --update-baseline"),
        "benchmarks": benchmarks,
    }
    if components is not None:
        record["components"] = {name: round(share, 4)
                                for name, share in components.items()}
    if obs_overhead is not None:
        record["obs_overhead"] = {name: round(ratio, 3)
                                  for name, ratio in obs_overhead.items()}
    return record


def write_record(record: Dict[str, object], path: pathlib.Path) -> None:
    """Write ``record`` as stable, diff-friendly JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")


def load_baseline(path: pathlib.Path = BASELINE_PATH) -> Dict[str, object]:
    """Load the committed record (raises if it has not been generated).

    Accepts any schema in :data:`SCHEMAS` — v1 records predate the
    component/overhead sections and are still valid baselines.
    """
    record = json.loads(path.read_text())
    schema = record.get("schema")
    if schema not in SCHEMAS:
        raise ValueError(f"{path}: unsupported schema {schema!r} "
                         f"(expected one of {SCHEMAS})")
    return record


def merge_probe(name: str, seconds: float,
                window_s: Optional[float] = None,
                path: pathlib.Path = OUTPUT_PATH) -> None:
    """Fold one freshly measured probe into the ``_output`` record.

    Used by benchmarks that already ran the workload under
    pytest-benchmark (``bench_headline.py``) to contribute their wall
    time without re-running it; only the *after* side is replaced.
    """
    if path.exists():
        record = json.loads(path.read_text())
    else:
        record = {"schema": CURRENT_SCHEMA, "benchmarks": {}}
    bench = record["benchmarks"].setdefault(name, {})
    before_s = BEFORE_SECONDS.get(name)
    if before_s is not None:
        bench["before"] = _rates(name, before_s, window_s)
        bench["speedup"] = round(before_s / seconds, 2)
    bench["after"] = _rates(name, seconds, window_s)
    write_record(record, path)
