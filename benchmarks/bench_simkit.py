"""Kernel performance benchmarks: what a testbed-second costs.

Not a paper figure — these keep the simulation kernel honest.  Every
workload-A repetition executes tens of thousands of events; regressions
here silently multiply every sweep's wall-clock time.
"""

from __future__ import annotations

from repro.core import buffer_256
from repro.experiments import run_once
from repro.simkit import ServiceStation, Simulator, mbps
from repro.trafficgen import single_packet_flows
from repro.simkit import RandomStreams


def test_event_loop_throughput(benchmark):
    """Bare scheduling throughput: chains of self-rescheduling events."""
    def run_chain():
        sim = Simulator()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            if counter["n"] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return counter["n"]

    executed = benchmark.pedantic(run_chain, rounds=3, iterations=1)
    assert executed == 20_000


def test_station_throughput(benchmark):
    """Queueing-station hot path: submit/finish cycles."""
    def run_station():
        sim = Simulator()
        station = ServiceStation(sim, "s", servers=4)
        done = {"n": 0}

        def on_done(payload):
            done["n"] += 1

        for i in range(10_000):
            station.submit(i, 0.0001, on_done)
        sim.run()
        return done["n"]

    completed = benchmark.pedantic(run_station, rounds=3, iterations=1)
    assert completed == 10_000


def test_full_testbed_event_cost(benchmark):
    """Events executed per full 500-flow repetition, and its wall cost."""
    def run_testbed():
        workload = single_packet_flows(mbps(60), n_flows=500,
                                       rng=RandomStreams(0))
        return run_once(buffer_256(), workload)

    result = benchmark.pedantic(run_testbed, rounds=1, iterations=1)
    assert result.completed_flows == 500
