"""Kernel performance benchmarks: what a testbed-second costs.

Not a paper figure — these keep the simulation kernel honest.  Every
workload-A repetition executes tens of thousands of events; regressions
here silently multiply every sweep's wall-clock time.

Run as a script to (re)generate the tracked perf record::

    PYTHONPATH=src python benchmarks/bench_simkit.py                   # _output/
    PYTHONPATH=src python benchmarks/bench_simkit.py --update-baseline # repo root

See ``kernelrecord.py`` for the ``BENCH_kernel.json`` format and
``perf_gate.py`` for the CI regression gate built on top of it.
"""

from __future__ import annotations

import json

from repro.core import buffer_256, flow_buffer_256
from repro.engine import HYBRID
from repro.experiments import run_once, scale_workload
from repro.scenarios import SINGLE
from repro.openflow import PacketBuffer
from repro.packets import udp_packet
from repro.simkit import ServiceStation, Simulator, mbps
from repro.trafficgen import single_packet_flows
from repro.simkit import RandomStreams


def _event_loop_chain():
    """20k-event timer chain: the bare heap scheduling path."""
    sim = Simulator()
    counter = {"n": 0}

    def tick():
        counter["n"] += 1
        if counter["n"] < 20_000:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter["n"]


def _zero_delay_chain():
    """20k-event same-instant chain: the dispatch micro-queue path."""
    sim = Simulator()
    counter = {"n": 0}

    def tick():
        counter["n"] += 1
        if counter["n"] < 20_000:
            sim.schedule(0.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter["n"]


def test_event_loop_throughput(benchmark):
    """Bare scheduling throughput: chains of self-rescheduling events."""
    executed = benchmark.pedantic(_event_loop_chain, rounds=3, iterations=1)
    assert executed == 20_000


def test_zero_delay_dispatch(benchmark):
    """Same-instant dispatch throughput (the ready micro-queue path)."""
    executed = benchmark.pedantic(_zero_delay_chain, rounds=3, iterations=1)
    assert executed == 20_000


def _station_run():
    """10k submit/finish cycles through a 4-server station."""
    sim = Simulator()
    station = ServiceStation(sim, "s", servers=4)
    done = {"n": 0}

    def on_done(payload):
        done["n"] += 1

    for i in range(10_000):
        station.submit(i, 0.0001, on_done)
    sim.run()
    return done["n"]


def _pktbuf_private_run():
    """20k store/release cycles through a private (pool-less) buffer.

    Guards the ``pool is None`` fast path in ``PacketBuffer.store``: a
    pooled buffer may pay for ledger routing, a private one must not.
    """
    buffer = PacketBuffer(capacity=64, reclaim_delay=0.0005)
    packet = udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                        "10.0.0.1", "10.0.0.2", 5000, 5001)
    now = 0.0
    for _ in range(20_000):
        buffer_id = buffer.store(packet, now)
        buffer.release(buffer_id, now)
        now += 0.001
    return buffer.total_released


def _testbed_run():
    """One full 500-flow repetition of the canonical testbed."""
    workload = single_packet_flows(mbps(60), n_flows=500,
                                   rng=RandomStreams(0))
    return run_once(buffer_256(), workload)


#: Flows in the hybrid-engine scale probe.  Matches the figscale
#: grid's 10^5 point — big enough that the packet engine takes minutes,
#: which is exactly the regime the hybrid engine exists for.
HYBRID_FLOWS = 100_000


def _hybrid_flow_workload():
    """The canonical figscale workload at the 10^5-flow bench point.

    Built once outside the timed region (lazy tails, but 10^5 first
    packets are real objects); the committed baseline excludes workload
    construction for the same reason.
    """
    return scale_workload(HYBRID_FLOWS)


def _hybrid_flow_run(workload=None):
    """One 10^5-flow repetition under the hybrid execution engine.

    The probe the 10^6-flow claim rests on: its ``BENCH_kernel.json``
    *before* number is the packet engine on the identical workload, so
    the recorded speedup is the hybrid-vs-packet ratio itself.
    """
    if workload is None:
        workload = _hybrid_flow_workload()
    return run_once(flow_buffer_256(), workload, seed=7,
                    scenario=SINGLE.with_engine(HYBRID))


def _event_loop_profiled_chain():
    """The 20k-event timer chain with the component profiler attached.

    Measures the *enabled* profiling path; the ratio against
    ``_event_loop_chain`` is the profiler's own overhead (recorded in
    ``BENCH_kernel.json`` and asserted by ``perf_gate.py``).
    """
    from repro.obs import ComponentProfiler
    sim = Simulator()
    sim.attach_profiler(ComponentProfiler())
    counter = {"n": 0}

    def tick():
        counter["n"] += 1
        if counter["n"] < 20_000:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter["n"]


def _observed_testbed_run(trace=False, profile=False):
    """One testbed repetition with a RunObserver attached."""
    from repro.obs import ObsConfig, RunObserver
    workload = single_packet_flows(mbps(60), n_flows=500,
                                   rng=RandomStreams(0))
    observer = RunObserver(ObsConfig(trace=trace, profile=profile),
                           label="bench", rate_mbps=60.0)
    run_once(buffer_256(), workload, obs=observer)
    return observer.observation


def _testbed_components():
    """Component self-time shares from one profiled testbed run."""
    report = _observed_testbed_run(profile=True).profile
    total = sum(stat.sampled_seconds
                for stat in report.components.values()) or 1.0
    return {name: stat.sampled_seconds / total
            for name, stat in sorted(report.components.items())}


def test_pktbuf_private_throughput(benchmark):
    """Null-pool packet-buffer hot path: store/release cycles."""
    released = benchmark.pedantic(_pktbuf_private_run, rounds=3,
                                  iterations=1)
    assert released == 20_000


def test_station_throughput(benchmark):
    """Queueing-station hot path: submit/finish cycles."""
    completed = benchmark.pedantic(_station_run, rounds=3, iterations=1)
    assert completed == 10_000


def test_full_testbed_event_cost(benchmark):
    """Events executed per full 500-flow repetition, and its wall cost."""
    result = benchmark.pedantic(_testbed_run, rounds=1, iterations=1)
    assert result.completed_flows == 500


def test_hybrid_flow_throughput(benchmark):
    """Hybrid-engine flows/sec at the figscale 10^5-flow point."""
    workload = _hybrid_flow_workload()
    result = benchmark.pedantic(lambda: _hybrid_flow_run(workload),
                                rounds=1, iterations=1)
    assert result.completed_flows == HYBRID_FLOWS
    assert result.total_flows == HYBRID_FLOWS


def main(argv=None):
    """Measure every probe and write the ``BENCH_kernel.json`` record."""
    import argparse

    import kernelrecord

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the committed repo-root record instead "
                             "of benchmarks/_output/")
    args = parser.parse_args(argv)

    after = {
        "event_loop": kernelrecord.best_of(_event_loop_chain),
        "zero_delay_dispatch": kernelrecord.best_of(_zero_delay_chain),
        "station": kernelrecord.best_of(_station_run),
        "pktbuf_private": kernelrecord.best_of(_pktbuf_private_run),
        "full_testbed": kernelrecord.best_of(_testbed_run, rounds=5),
    }
    # The scale probe costs ~half a minute per round; one round is
    # plenty — the committed speedup is ~an order of magnitude, far
    # beyond round-to-round jitter.
    workload = _hybrid_flow_workload()
    after["hybrid_flows"] = kernelrecord.best_of(
        lambda: _hybrid_flow_run(workload), rounds=1)
    window = _testbed_run().window
    # Observability overhead, self-relative on this machine: profiled /
    # plain event loop and traced / plain testbed wall times, measured
    # interleaved so both sides share CPU-frequency state.
    obs_overhead = {
        "event_loop_profiled_ratio": kernelrecord.paired_ratio(
            _event_loop_chain, _event_loop_profiled_chain),
        "testbed_traced_ratio": kernelrecord.paired_ratio(
            _testbed_run, lambda: _observed_testbed_run(trace=True),
            rounds=3),
    }
    record = kernelrecord.build_record(
        after, testbed_window_s=window,
        components=_testbed_components(), obs_overhead=obs_overhead)
    path = (kernelrecord.BASELINE_PATH if args.update_baseline
            else kernelrecord.OUTPUT_PATH)
    # The shard scaling curve is measured by bench_shard.py, not here;
    # carry the existing section forward instead of dropping it.
    if path.exists():
        previous = json.loads(path.read_text())
        if "shard_scaling" in previous:
            record["shard_scaling"] = previous["shard_scaling"]
    kernelrecord.write_record(record, path)
    for name, bench in record["benchmarks"].items():
        print(f"{name:22s} {bench['before']['seconds']:.6f}s -> "
              f"{bench['after']['seconds']:.6f}s  ({bench['speedup']:.2f}x)")
    for name, ratio in record["obs_overhead"].items():
        print(f"{name:28s} {ratio:.3f}x")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()

