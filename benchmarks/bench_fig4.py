"""Fig. 4 — switch usage under different sending rates.

Paper targets: the three settings track each other closely (buffer adds
only ~5.6 % on average); usage rises quickly at low rates and flattens
past ~40 Mbps (upcall batching).
"""

from __future__ import annotations

from figutil import at_rate, bench_run_a, regenerate

from repro.core import buffer_256, percent_increase


def test_fig4_switch_usage(benchmark, benefits_data, emit):
    series = regenerate("fig4", benefits_data, emit)
    nb = series["no-buffer"]
    b16 = series["buffer-16"]
    b256 = series["buffer-256"]

    # All three curves are close: within 25% of each other at all rates.
    # (At the very top rates no-buffer reads slightly LOWER because the
    # saturated bus throttles how fast its CPU can be handed work.)
    for a, b, c in zip(nb, b16, b256):
        band = 0.25 * a
        assert abs(b - a) < band and abs(c - a) < band
    # The buffered settings cost slightly MORE on average (paper: +5.6%).
    increase = percent_increase(nb, b256)
    assert 0 < increase < 15
    # Concavity: the first half of the sweep adds more usage than the
    # second half (batching amortizes per-packet work under load).
    first_half = at_rate(benefits_data, nb, 50) - at_rate(benefits_data,
                                                          nb, 5)
    second_half = at_rate(benefits_data, nb, 95) - at_rate(benefits_data,
                                                           nb, 50)
    assert first_half > second_half

    result = bench_run_a(benchmark, buffer_256(), rate_mbps=80)
    assert result.switch_usage_percent > 100      # multi-core readings
