#!/usr/bin/env python3
"""Extension: buffer savings compound along multi-switch paths.

The paper's testbed has one switch, but its motivation compounds with
path length — every switch on a route sends its own packet_in for a new
flow.  This example runs the same workload over 1-, 2- and 3-switch
lines (one shared controller, one control channel per switch) and shows
total control-path bytes for no-buffer vs buffer-256 vs flow-granularity.

Run:  python examples/multi_switch_line.py
"""

from __future__ import annotations

from repro import buffer_256, flow_buffer_256, no_buffer
from repro.experiments.multiswitch import build_line_testbed
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import batched_multi_packet_flows

RATE_MBPS = 50
N_FLOWS = 20
PACKETS_PER_FLOW = 10


def run(config, n_switches):
    workload = batched_multi_packet_flows(
        mbps(RATE_MBPS), n_flows=N_FLOWS,
        packets_per_flow=PACKETS_PER_FLOW, batch_size=5,
        rng=RandomStreams(1))
    testbed = build_line_testbed(config, workload, n_switches=n_switches)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=3.0)
    stats = (testbed.total_packet_ins(),
             testbed.total_control_bytes() / 1000.0,
             len(testbed.host2.received))
    testbed.shutdown()
    return stats


def main() -> None:
    total_packets = N_FLOWS * PACKETS_PER_FLOW
    print(f"{N_FLOWS} flows x {PACKETS_PER_FLOW} packets at "
          f"{RATE_MBPS} Mbps across line topologies "
          f"(host1 - s1..sN - host2):\n")
    header = (f"{'switches':>8} {'mechanism':<16} {'packet_ins':>10} "
              f"{'control KB':>10} {'delivered':>9}")
    print(header)
    print("-" * len(header))
    for n_switches in (1, 2, 3):
        for config in (no_buffer(), buffer_256(), flow_buffer_256()):
            packet_ins, control_kb, delivered = run(config, n_switches)
            print(f"{n_switches:>8} {config.label:<16} {packet_ins:>10d} "
                  f"{control_kb:>9.1f}K "
                  f"{delivered:>5d}/{total_packets}")
        print()

    print("Reading the table:")
    print(" * Control traffic grows ~linearly with path length for every")
    print("   mechanism - each switch asks the controller separately.")
    print(" * The buffer's absolute savings therefore also grow with the")
    print("   path: at 3 switches, no-buffer ships every miss as a full")
    print("   frame three times.")
    print(" * Flow granularity keeps exactly one request per flow PER")
    print("   SWITCH regardless of the flow's length.")


if __name__ == "__main__":
    main()
