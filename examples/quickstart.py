#!/usr/bin/env python3
"""Quickstart: measure what the SDN switch buffer buys you.

Builds the paper's Fig. 1 testbed (two hosts, an OVS-like switch, a
Floodlight-like controller), sends 200 brand-new UDP flows at 50 Mbps,
and compares the three buffer mechanisms on the metrics the paper
reports.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (buffer_16, buffer_256, flow_buffer_256, no_buffer,
                   run_once, single_packet_flows)
from repro.simkit import RandomStreams, mbps, to_msec

SENDING_RATE_MBPS = 50
N_FLOWS = 200


def main() -> None:
    print(f"Sending {N_FLOWS} single-packet UDP flows at "
          f"{SENDING_RATE_MBPS} Mbps through the simulated testbed...\n")

    header = (f"{'mechanism':<16} {'ctrl load up':>12} {'ctrl load dn':>12} "
              f"{'controller%':>11} {'switch%':>8} {'setup delay':>11} "
              f"{'buffer peak':>11}")
    print(header)
    print("-" * len(header))

    for config in (no_buffer(), buffer_16(), buffer_256(),
                   flow_buffer_256()):
        workload = single_packet_flows(mbps(SENDING_RATE_MBPS),
                                       n_flows=N_FLOWS,
                                       rng=RandomStreams(1))
        result = run_once(config, workload)
        setup = result.setup_delay_summary()
        print(f"{config.label:<16} "
              f"{result.control_load_up_mbps:>8.2f}Mbps "
              f"{result.control_load_down_mbps:>8.2f}Mbps "
              f"{result.controller_usage_percent:>10.1f}% "
              f"{result.switch_usage_percent:>7.1f}% "
              f"{to_msec(setup.mean):>9.2f}ms "
              f"{result.buffer_peak_units:>11d}")

    print("\nReading the table:")
    print(" * no-buffer sends whole frames to the controller -> the control")
    print("   path carries roughly the sending rate.")
    print(" * the buffered mechanisms send ~128-byte header fragments")
    print("   instead -> control load collapses (the paper's 78.7%).")
    print(" * flow-granularity additionally sends ONE request per flow;")
    print("   with single-packet flows it matches packet granularity, but")
    print("   see flow_granularity_comparison.py for multi-packet flows.")


if __name__ == "__main__":
    main()
