#!/usr/bin/env python3
"""The paper's §VI.B argument: the buffer helps TCP flows too.

A TCP connection opens, transfers some data, goes idle long enough for
the switch to idle-evict its rule, then resumes with a 50-packet burst.
The connection is still open, so the burst arrives with NO matching rule
— the same situation as a brand-new UDP flow.  This script compares how
the three mechanisms handle the resume burst.

Run:  python examples/tcp_rule_eviction.py
"""

from __future__ import annotations

from repro import buffer_256, flow_buffer_256, no_buffer
from repro.controllersim import ControllerConfig
from repro.experiments import TestbedCalibration, build_testbed
from repro.simkit import mbps, to_msec
from repro.switchsim import SwitchConfig
from repro.trafficgen import tcp_eviction_scenario

#: Rule idle timeout shorter than the connection's idle gap, so the rule
#: is evicted mid-connection (the §VI.B premise).
IDLE_TIMEOUT = 0.5
IDLE_GAP = 1.5
RATE_MBPS = 80


def main() -> None:
    calibration = TestbedCalibration(
        switch=SwitchConfig(),
        controller=ControllerConfig(flow_idle_timeout=IDLE_TIMEOUT))

    print(f"TCP connection at {RATE_MBPS} Mbps: handshake + 10 data "
          f"segments, {IDLE_GAP}s idle (rule idle-timeout "
          f"{IDLE_TIMEOUT}s -> evicted), then a 50-segment burst.\n")

    header = (f"{'mechanism':<16} {'packet_ins':>10} {'ctrl KB':>8} "
              f"{'burst fwd delay':>15} {'delivered':>9}")
    print(header)
    print("-" * len(header))

    for config in (no_buffer(), buffer_256(), flow_buffer_256()):
        workload = tcp_eviction_scenario(mbps(RATE_MBPS),
                                         idle_gap=IDLE_GAP)
        testbed = build_testbed(config, workload, calibration=calibration)
        testbed.controller.start_handshake()
        settle = 0.02
        testbed.pktgen.start(at=settle)
        testbed.sim.run(until=settle + workload.duration + 0.5)
        ctrl_bytes = testbed.metrics.capture_up.bytes_total
        packet_ins = testbed.metrics.capture_up.count("packetin")
        # Burst forwarding delay: first burst segment sent -> last burst
        # segment delivered to host2.
        burst_start = settle + workload.burst_start
        deliveries = [t for t, p in
                      ((pkt.switch_out_at, pkt)
                       for pkt in testbed.host2.received)
                      if t is not None and t >= burst_start]
        burst_delay = max(deliveries) - burst_start if deliveries else 0.0
        delivered = len(testbed.host2.received)
        print(f"{config.label:<16} {packet_ins:>10d} "
              f"{ctrl_bytes / 1000:>7.1f}K {to_msec(burst_delay):>13.2f}ms "
              f"{delivered:>4d}/{workload.n_packets}")
        testbed.shutdown()

    print("\nReading the table:")
    print(" * Two misses are unavoidable: the SYN (connection open) and")
    print("   the first burst segment (rule was evicted while idle).")
    print(" * no-buffer ships every burst miss as a full 1000-byte frame;")
    print("   flow-granularity buffers the burst and sends ONE request -")
    print("   2 packet_ins total for the whole connection lifetime.")
    print(" * This is the paper's §VI.B: buffering benefits TCP whenever")
    print("   a live connection's rule is evicted from a full table.")


if __name__ == "__main__":
    main()
