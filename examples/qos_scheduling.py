#!/usr/bin/env python3
"""Extension: egress QoS scheduling (the paper's stated future work).

The paper closes by proposing "egress scheduling mechanisms combining
with the ingress buffer mechanism ... to provide QoS guarantee for
different applications".  This example attaches a strict-priority egress
scheduler to the switch's host2-facing port and pushes a saturating mix
of best-effort and expedited (DSCP 46) traffic through an installed
rule, then compares per-class queueing delay with and without the
scheduler.

Run:  python examples/qos_scheduling.py
"""

from __future__ import annotations

from repro.core import PacketGranularityBuffer
from repro.netsim import DuplexLink
from repro.openflow import ControlChannel, FlowEntry, Match, OutputAction
from repro.packets import (EthernetHeader, IPv4Header, PROTO_UDP, Packet,
                           UDPHeader)
from repro.simkit import Simulator, mbps
from repro.switchsim import (CLASS_BEST_EFFORT, CLASS_EXPEDITED, Switch,
                             SwitchConfig, attach_scheduler)

N_PACKETS = 400          # per class
FRAME_LEN = 1000
#: Offered load 2x the line rate, so the egress queue really builds.
SEND_RATE = mbps(200)
LINE_RATE = mbps(100)


def _packet(dscp, tag):
    eth = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02")
    ip = IPv4Header("10.0.0.1", "10.0.0.2", protocol=PROTO_UDP, dscp=dscp)
    l4 = UDPHeader(1000 + tag % 100, 2000)
    return Packet(eth=eth, ip=ip, l4=l4, payload_len=FRAME_LEN - 42)


def run(with_scheduler: bool):
    sim = Simulator()
    channel = ControlChannel(sim, DuplexLink(sim, "ctrl", mbps(100)))
    channel.bind_controller(lambda message: None)
    switch = Switch(sim, SwitchConfig(), PacketGranularityBuffer(256),
                    channel)
    h1 = DuplexLink(sim, "h1", SEND_RATE)      # fat ingress pipe
    h2 = DuplexLink(sim, "h2", LINE_RATE)      # contended egress
    switch.attach_port(1, h1, switch_side_forward=False)
    port2 = switch.attach_port(2, h2, switch_side_forward=False)
    deliveries = {CLASS_EXPEDITED: [], CLASS_BEST_EFFORT: []}

    def on_delivery(packet):
        cls = (CLASS_EXPEDITED if packet.ip.dscp >= 40
               else CLASS_BEST_EFFORT)
        deliveries[cls].append(sim.now - packet.created_at)

    h2.reverse.connect(on_delivery)
    scheduler = attach_scheduler(port2, sim) if with_scheduler else None

    # Pre-install a match-all rule so this is purely a data-path test.
    switch.flow_table.insert(
        FlowEntry(match=Match(), actions=(OutputAction(2),)), now=0.0)

    gap = FRAME_LEN * 8 / SEND_RATE
    for i in range(N_PACKETS):
        for dscp in (0, 46):
            packet = _packet(dscp, i)
            packet.created_at = i * gap
            sim.schedule_at(i * gap, h1.forward.send, packet,
                            packet.wire_len)
    sim.run(until=10.0)
    switch.shutdown()
    return deliveries, scheduler


def main() -> None:
    print(f"Pushing 2x{N_PACKETS} frames (expedited + best-effort mix) at "
          f"2x the egress line rate...\n")
    for with_scheduler in (False, True):
        label = ("strict-priority scheduler" if with_scheduler
                 else "plain FIFO egress")
        deliveries, scheduler = run(with_scheduler)
        expedited = deliveries[CLASS_EXPEDITED]
        best_effort = deliveries[CLASS_BEST_EFFORT]
        print(f"== {label}")
        print(f"   expedited:   {len(expedited):4d} delivered, "
              f"mean latency {1e3 * sum(expedited) / len(expedited):8.2f} ms")
        print(f"   best-effort: {len(best_effort):4d} delivered, "
              f"mean latency "
              f"{1e3 * sum(best_effort) / len(best_effort):8.2f} ms")
        if scheduler is not None:
            for line in scheduler.summary():
                print(f"   {line}")
        print()

    print("With FIFO, both classes suffer the same overload queueing;")
    print("with strict priority, expedited traffic rides through at near")
    print("line-rate latency while best-effort absorbs the congestion.")


if __name__ == "__main__":
    main()
