#!/usr/bin/env python3
"""Walk through the life of one miss-match packet, event by event.

Subscribes to every observable the switch and controller publish and
prints a timeline for a single new flow under the flow-granularity
buffer: ingress, table miss, buffering, the one packet_in, the
controller's decision, rule installation, buffered release, egress.
A compact way to see Algorithms 1 and 2 actually execute.

Run:  python examples/trace_walkthrough.py
"""

from __future__ import annotations

from repro import flow_buffer_256
from repro.experiments import build_testbed
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import batched_multi_packet_flows


def main() -> None:
    # One flow of 4 packets sent back-to-back at 80 Mbps: the later
    # packets arrive before the rule installs, so they buffer silently.
    workload = batched_multi_packet_flows(mbps(80), n_flows=5,
                                          packets_per_flow=4, batch_size=5,
                                          rng=RandomStreams(7))
    # Keep only flow 0's packets for a readable timeline.
    workload.entries = [(t, p) for t, p in workload.entries
                        if p.flow_id == 0]
    workload.flows = {0: workload.flows[0]}
    testbed = build_testbed(flow_buffer_256(), workload)

    timeline = []

    def log(kind):
        def handler(time, *args):
            timeline.append((time, kind, args))
        return handler

    events = testbed.switch.events
    events.on("packet_ingress", log("packet enters switch"))
    events.on("table_miss", log("flow-table MISS"))
    events.on("buffer_stored", log("packet buffered"))
    events.on("packet_in_sent", log("packet_in -> controller"))
    events.on("reply_arrived", log("reply arrives at switch"))
    events.on("flow_installed", log("rule installed"))
    events.on("buffer_released", log("buffered packet released"))
    events.on("packet_egress", log("packet leaves switch"))
    testbed.controller.events.on("packet_in_received",
                                 log("controller receives request"))
    testbed.controller.events.on("replies_sent",
                                 log("controller sends flow_mod+packet_out"))

    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=0.2)

    print("Timeline of one 4-packet flow under the flow-granularity "
          "buffer:\n")
    start = timeline[0][0] if timeline else 0.0
    for time, kind, args in timeline:
        detail = ""
        if kind in ("packet enters switch", "packet buffered",
                    "buffered packet released", "packet leaves switch"):
            packet = args[0]
            if getattr(packet, "seq_in_flow", None) is not None:
                detail = f"(packet #{packet.seq_in_flow})"
        if kind == "packet_in -> controller":
            message = args[0]
            detail = (f"(buffer_id={message.buffer_id}, "
                      f"{message.data_len}B of {message.total_len}B)")
        print(f"  +{(time - start) * 1e3:7.3f} ms  {kind:<34} {detail}")

    agent = testbed.switch.agent
    print(f"\nTotals: {agent.packet_ins_sent} packet_in for "
          f"{len(testbed.host2.received)} delivered packets "
          f"(Algorithm 1 buffered the rest; Algorithm 2 released them "
          f"together).")
    testbed.shutdown()


if __name__ == "__main__":
    main()
