#!/usr/bin/env python3
"""Reproduce the paper's §V mechanism comparison (Figs. 9-13) in miniature.

Packet-granularity (the OpenFlow default) vs the paper's flow-granularity
buffer, both with 256 units, on workload B: 50 UDP flows of 20 packets
sent in cross-sequenced batches of 5 flows.  Runs on the §V prototype
calibration (see DESIGN.md on why §V used a slower patched switch).

Run:  python examples/flow_granularity_comparison.py
"""

from __future__ import annotations

import time

from repro.core import crossover_rate
from repro.experiments import (FIGURES, format_figure, format_headlines,
                               headline_claims, run_mechanism_experiment)

RATES = (5, 20, 35, 50, 65, 80, 95)
REPETITIONS = 2


def main() -> None:
    print("Running workload B: 50 flows x 20 packets, cross-sequenced in "
          f"batches of 5, rates {RATES} Mbps, {REPETITIONS} repetitions, "
          "for both buffer mechanisms...")
    start = time.time()
    data = run_mechanism_experiment(rates_mbps=RATES,
                                    repetitions=REPETITIONS)
    print(f"done in {time.time() - start:.1f}s\n")

    for figure_id in ("fig9a", "fig9b", "fig10", "fig11", "fig12a",
                      "fig12b", "fig13a", "fig13b"):
        print(format_figure(FIGURES[figure_id], data))
        print()

    print("Headline claims (§V portion):")
    print(format_headlines(headline_claims(mechanism=data)))

    # Where does flow granularity start winning on forwarding delay?
    rates = list(data.rates)
    fwd = FIGURES["fig12b"].metric
    pkt_series = data.series("buffer-256", fwd)
    flow_series = data.series("flow-buffer-256", fwd)
    crossover = crossover_rate(rates, flow_series, pkt_series)
    print(f"\nflow-granularity forwarding-delay crossover: "
          f"{crossover} Mbps (paper: ~80 Mbps)")

    print("\nWhat to look for:")
    print(" * fig9a: flow granularity sends ONE packet_in per flow, so its")
    print("   curve stays flat while packet granularity grows past the")
    print("   ~30 Mbps knee (redundant requests for in-flight flows).")
    print(" * fig12b: past ~80 Mbps the one-packet_out-releases-all design")
    print("   flushes buffered packets earlier -> lower forwarding delay.")
    print(" * fig13: units turn over per-flow, not per-packet - the 71.6%")
    print("   buffer-utilization improvement.")


if __name__ == "__main__":
    main()
