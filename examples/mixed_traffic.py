#!/usr/bin/env python3
"""The paper's §VI.A argument: UDP dominates flow counts, so buffering pays.

Real links carry a few long TCP connections (most of the bytes) among a
crowd of small UDP flows (most of the *flows* — the paper cites CAIDA's
TCP/UDP ratio study).  TCP flows miss once at connection setup and then
hit their installed rule; every UDP flow is a fresh miss.  This example
pushes that mix through the testbed and shows where the requests come
from and what the buffer saves.

Run:  python examples/mixed_traffic.py
"""

from __future__ import annotations

from repro import buffer_256, flow_buffer_256, no_buffer, run_once
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import mixed_tcp_udp

RATE_MBPS = 60
N_TCP = 10
PACKETS_PER_TCP = 20
N_UDP = 100


def main() -> None:
    total_packets = N_TCP * PACKETS_PER_TCP + N_UDP
    print(f"Mix at {RATE_MBPS} Mbps: {N_TCP} TCP connections x "
          f"{PACKETS_PER_TCP} segments (bytes-heavy) + {N_UDP} "
          f"single-packet UDP flows (flow-count-heavy) = "
          f"{total_packets} packets, {N_TCP + N_UDP} flows.\n")

    header = (f"{'mechanism':<16} {'packet_ins':>10} {'ctrl up':>9} "
              f"{'ctrl down':>9} {'controller%':>11}")
    print(header)
    print("-" * len(header))
    for config in (no_buffer(), buffer_256(), flow_buffer_256()):
        workload = mixed_tcp_udp(mbps(RATE_MBPS), n_tcp_flows=N_TCP,
                                 packets_per_tcp=PACKETS_PER_TCP,
                                 n_udp_flows=N_UDP,
                                 rng=RandomStreams(1))
        result = run_once(config, workload)
        print(f"{config.label:<16} {result.packet_in_count:>10d} "
              f"{result.control_load_up_mbps:>5.2f}Mbps "
              f"{result.control_load_down_mbps:>5.2f}Mbps "
              f"{result.controller_usage_percent:>10.1f}%")

    print(f"\nReading the table:")
    print(f" * {N_UDP} of the ~{N_TCP + N_UDP} requests come from UDP")
    print(f"   flows even though they carry a tiny share of the bytes -")
    print(f"   flow COUNT, not byte volume, drives controller load.")
    print(f" * The buffer turns each of those requests from a full frame")
    print(f"   into a header fragment; flow granularity also absorbs the")
    print(f"   TCP connections' pre-rule-install segments.")
    print(f" * This is §VI.A's point: a mechanism that helps UDP flows")
    print(f"   helps the realistic mix.")


if __name__ == "__main__":
    main()
