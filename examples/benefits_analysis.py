#!/usr/bin/env python3
"""Reproduce the paper's §IV benefits analysis (Figs. 2-8) in miniature.

Runs the workload-A sweep (single-packet flows, forged sources) for
no-buffer / buffer-16 / buffer-256 at a handful of sending rates and
prints every figure's series, plus the §IV headline percentages.

Full-fidelity reproduction (the paper's 5-100 Mbps x 20 repetitions):
    repro-sdn-buffer all --full

Run:  python examples/benefits_analysis.py
"""

from __future__ import annotations

import time

from repro.experiments import (FIGURES, format_figure, format_headlines,
                               headline_claims, run_benefits_experiment)

RATES = (5, 20, 35, 50, 65, 80, 95)
REPETITIONS = 2
N_FLOWS = 400      # paper: 1000; reduced for a faster demo


def main() -> None:
    print(f"Running workload A: {N_FLOWS} single-packet flows per run, "
          f"rates {RATES} Mbps, {REPETITIONS} repetitions each, for "
          f"3 buffer settings...")
    start = time.time()
    data = run_benefits_experiment(rates_mbps=RATES,
                                   repetitions=REPETITIONS,
                                   n_flows=N_FLOWS)
    print(f"done in {time.time() - start:.1f}s\n")

    for figure_id in ("fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6",
                      "fig7", "fig8"):
        print(format_figure(FIGURES[figure_id], data))
        print()

    print("Headline claims (§IV portion):")
    print(format_headlines(headline_claims(benefits=data)))

    print("\nWhat to look for:")
    print(" * fig2a/b: no-buffer ~linear in rate; buffer-16 bends up after")
    print("   its exhaustion knee (~30-40 Mbps); buffer-256 stays low.")
    print(" * fig5/fig7: the no-buffer column blows up past ~75 Mbps as")
    print("   full frames saturate the ASIC<->CPU bus.")
    print(" * fig8: buffer-16 pegs at 16 units; buffer-256 grows with rate")
    print("   but stays far below 256 - the paper's '80 KB is enough'.")


if __name__ == "__main__":
    main()
