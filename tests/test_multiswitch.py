"""Tests for the multi-switch line topology extension."""

from __future__ import annotations

import pytest

from repro.core import buffer_256, flow_buffer_256, no_buffer
from repro.experiments.multiswitch import (MultiSwitchTestbed,
                                           build_line_testbed)
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import batched_multi_packet_flows, single_packet_flows


def _run(config, n_switches=2, n_flows=20, rate=30, seed=8,
         until=2.0) -> MultiSwitchTestbed:
    workload = single_packet_flows(mbps(rate), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    testbed = build_line_testbed(config, workload, n_switches=n_switches,
                                 seed=seed)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=until)
    return testbed


def test_build_validation():
    workload = single_packet_flows(mbps(10), n_flows=1,
                                   rng=RandomStreams(0))
    with pytest.raises(ValueError):
        build_line_testbed(buffer_256(), workload, n_switches=0)


def test_packets_traverse_the_whole_line():
    testbed = _run(buffer_256(), n_switches=3, n_flows=15)
    assert len(testbed.host2.received) == 15
    testbed.shutdown()


def test_every_switch_requests_every_new_flow():
    testbed = _run(buffer_256(), n_switches=2, n_flows=20)
    # Each switch misses each new flow once: the compounding the paper's
    # buffer savings multiply across.
    assert testbed.packet_ins_per_switch() == [20, 20]
    assert testbed.total_packet_ins() == 40
    testbed.shutdown()


def test_rules_installed_on_every_switch():
    testbed = _run(buffer_256(), n_switches=2, n_flows=10)
    for switch in testbed.switches:
        assert len(switch.flow_table) == 10
    testbed.shutdown()


def test_single_switch_line_matches_basic_testbed_accounting():
    testbed = _run(buffer_256(), n_switches=1, n_flows=10)
    assert testbed.packet_ins_per_switch() == [10]
    assert len(testbed.host2.received) == 10
    testbed.shutdown()


def test_buffered_line_saves_control_bytes_per_hop():
    bare = _run(no_buffer(), n_switches=2, n_flows=20)
    buffered = _run(buffer_256(), n_switches=2, n_flows=20)
    assert (buffered.total_control_bytes()
            < 0.35 * bare.total_control_bytes())
    bare.shutdown()
    buffered.shutdown()


def test_control_savings_scale_with_path_length():
    short_bare = _run(no_buffer(), n_switches=1, n_flows=20)
    long_bare = _run(no_buffer(), n_switches=3, n_flows=20)
    saved_per_hop = (long_bare.total_control_bytes()
                     - short_bare.total_control_bytes()) / 2
    # Every extra hop costs roughly one more full set of control traffic.
    assert saved_per_hop == pytest.approx(
        short_bare.total_control_bytes(), rel=0.25)
    short_bare.shutdown()
    long_bare.shutdown()


def test_flow_granularity_on_a_line():
    workload = batched_multi_packet_flows(mbps(60), n_flows=10,
                                          packets_per_flow=8, batch_size=5,
                                          rng=RandomStreams(9))
    testbed = build_line_testbed(flow_buffer_256(), workload,
                                 n_switches=2, seed=9)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=3.0)
    # One request per flow per switch, even with 8 packets per flow.
    assert testbed.packet_ins_per_switch() == [10, 10]
    assert len(testbed.host2.received) == 80
    testbed.shutdown()


def test_per_switch_captures_see_their_own_channel_only():
    testbed = _run(buffer_256(), n_switches=2, n_flows=10)
    for capture in testbed.control_captures_up:
        assert capture.count("packetin") == 10
    for capture in testbed.control_captures_down:
        assert capture.count("flowmod") == 10
        assert capture.count("packetout") == 10
    testbed.shutdown()
