"""Result-cache tests: roundtrip, keying, invalidation, corruption."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import BufferConfig, MECHANISM_PACKET, buffer_256
from repro.experiments import workload_a_factory
from repro.parallel import (ResultCache, SweepJob, default_cache_dir,
                            parallel_sweep, register_jobs, task_key)

_FACTORY = workload_a_factory(n_flows=12)


def _job(config=None, factory=None, base_seed=1, **kwargs):
    job = SweepJob(config=config or buffer_256(),
                   factory=factory or _FACTORY, rates_mbps=(20,),
                   repetitions=1, base_seed=base_seed, **kwargs)
    register_jobs([job])
    return job


# ---------------------------------------------------------------------------
# engine integration: hit on rerun, equal rows
# ---------------------------------------------------------------------------

def test_second_run_is_served_from_cache(tmp_path):
    cache = ResultCache(tmp_path)
    first = parallel_sweep(buffer_256(), _FACTORY, (20, 80), 2,
                           base_seed=1, workers=1, cache=cache)
    assert cache.stores == 4 and cache.hits == 0
    second = parallel_sweep(buffer_256(), _FACTORY, (20, 80), 2,
                            base_seed=1, workers=1, cache=cache)
    assert cache.hits == 4
    assert cache.stores == 4          # nothing recomputed
    for a, b in zip(first.rows, second.rows):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_config_change_busts_the_key(tmp_path):
    cache = ResultCache(tmp_path)
    parallel_sweep(buffer_256(), _FACTORY, (20,), 1, base_seed=1,
                   workers=1, cache=cache)
    stores_before = cache.stores
    parallel_sweep(BufferConfig(mechanism=MECHANISM_PACKET, capacity=64),
                   _FACTORY, (20,), 1, base_seed=1, workers=1, cache=cache)
    assert cache.stores == stores_before + 1    # recomputed, not reused
    assert cache.hits == 0


# ---------------------------------------------------------------------------
# key sensitivity
# ---------------------------------------------------------------------------

def _key_of(job):
    return task_key(job, job.tasks()[0])


def test_key_sensitive_to_every_input():
    base = _key_of(_job())
    assert _key_of(_job()) == base                           # stable
    assert _key_of(_job(config=BufferConfig(
        mechanism=MECHANISM_PACKET, capacity=16))) != base   # config
    assert _key_of(_job(base_seed=2)) != base                # seed
    assert _key_of(_job(factory=workload_a_factory(
        n_flows=99))) != base                                # workload
    assert _key_of(_job(max_extends=5)) != base              # runner knob
    from repro.experiments import default_calibration
    assert _key_of(_job(
        calibration=default_calibration())) != base          # calibration


def test_key_ignores_job_id():
    a, b = _job(), _job()
    assert a.job_id != b.job_id
    assert _key_of(a) == _key_of(b)


def test_key_includes_repro_version(monkeypatch):
    import repro
    job = _job()
    key = _key_of(job)
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert _key_of(job) != key


# ---------------------------------------------------------------------------
# storage behavior
# ---------------------------------------------------------------------------

def test_corrupted_entry_degrades_to_miss(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    key = _key_of(job)
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is None
    assert cache.misses == 1
    assert not path.exists()          # dropped, will be recomputed


def test_missing_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("0" * 64) is None
    assert cache.misses == 1


def test_stats_line_mentions_root(tmp_path):
    cache = ResultCache(tmp_path)
    assert str(tmp_path) in cache.stats()


def test_default_cache_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro-sdn-buffer"
