"""Observation plumbing end to end: serial, parallel, cache, CLI."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import buffer_16, buffer_256
from repro.experiments import sweep, workload_a_factory
from repro.experiments.cli import main as cli_main
from repro.obs import (ObsCollector, ObsConfig, parse_prometheus,
                       spans_from_jsonl, validate_chrome_trace,
                       validate_nesting)
from repro.parallel import ResultCache, SweepJob, parallel_sweep, run_sweep_jobs

_RATES = (20.0,)
_REPS = 2
_FLOWS = 20


def _rows_equal(a, b):
    assert len(a.rows) == len(b.rows)
    for row_a, row_b in zip(a.rows, b.rows):
        assert dataclasses.asdict(row_a) == dataclasses.asdict(row_b)


def _observed_sweep(**kwargs):
    obs = ObsCollector(ObsConfig())
    result = sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
                   _RATES, _REPS, base_seed=1, obs=obs, **kwargs)
    return result, obs


# ---------------------------------------------------------------------------
# Serial collection
# ---------------------------------------------------------------------------

def test_serial_sweep_collects_one_observation_per_repetition():
    result, obs = _observed_sweep()
    assert len(obs.observations) == len(_RATES) * _REPS
    assert obs.total_spans > 0 and obs.dropped_spans == 0
    for observation in obs.observations:
        assert observation.label == "buffer-16"
        assert validate_nesting(observation.spans) == []
        assert observation.flows_traced > 0
    assert "2 run(s)" in obs.summary()


def test_merged_metrics_are_scoped_by_run_label():
    _, obs = _observed_sweep()
    merged = obs.merged_metrics()
    assert not merged.empty
    for key in (list(merged.counters) + list(merged.gauges)
                + list(merged.histograms)):
        _, labels = key
        assert ("run", "buffer-16") in labels
    # counters from both repetitions sum: one packet_in per flow each
    packet_ins = [value for (name, _), value in merged.counters.items()
                  if name == "switch_packet_ins_sent_total"]
    assert packet_ins == [_FLOWS * _REPS]


def test_observing_does_not_perturb_results():
    plain = sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
                  _RATES, _REPS, base_seed=1)
    observed, _ = _observed_sweep()
    _rows_equal(plain, observed)


# ---------------------------------------------------------------------------
# Parallel collection
# ---------------------------------------------------------------------------

def test_parallel_observations_match_serial():
    serial_result, serial_obs = _observed_sweep()
    parallel_obs = ObsCollector(ObsConfig())
    parallel_result = parallel_sweep(
        buffer_16(), workload_a_factory(n_flows=_FLOWS), _RATES, _REPS,
        base_seed=1, workers=2, obs=parallel_obs)
    _rows_equal(serial_result, parallel_result)
    assert len(parallel_obs.observations) == len(serial_obs.observations)
    assert parallel_obs.total_spans == serial_obs.total_spans
    assert parallel_obs.merged_metrics() == serial_obs.merged_metrics()
    assert [g[0] for g in parallel_obs.trace_groups()] \
        == [g[0] for g in serial_obs.trace_groups()]


def test_trace_off_still_merges_metrics_and_stays_bit_identical():
    plain = sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
                  _RATES, _REPS, base_seed=1)
    obs = ObsCollector(ObsConfig(trace=False))
    result = parallel_sweep(
        buffer_16(), workload_a_factory(n_flows=_FLOWS), _RATES, _REPS,
        base_seed=1, workers=2, obs=obs)
    _rows_equal(plain, result)
    assert obs.total_spans == 0
    assert not obs.merged_metrics().empty
    assert obs.trace_groups() == []


def test_multi_job_study_scopes_metrics_per_mechanism():
    factory = workload_a_factory(n_flows=_FLOWS)
    obs = ObsCollector(ObsConfig())
    jobs = [SweepJob(config=config, factory=factory, rates_mbps=_RATES,
                     repetitions=1, base_seed=3)
            for config in (buffer_16(), buffer_256())]
    _, report = run_sweep_jobs(jobs, workers=2, obs=obs)
    assert report.ok
    merged = obs.merged_metrics()
    runs = {dict(labels).get("run")
            for (_, labels) in merged.counters}
    assert runs == {"buffer-16", "buffer-256"}


def test_observed_sweep_skips_cache_reads_but_still_populates(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    factory = workload_a_factory(n_flows=_FLOWS)

    def run(obs):
        job = SweepJob(config=buffer_16(), factory=factory,
                       rates_mbps=_RATES, repetitions=_REPS, base_seed=1)
        return run_sweep_jobs([job], workers=1, cache=cache, obs=obs)

    _, first = run(ObsCollector(ObsConfig()))
    assert first.cached == 0                      # nothing cached yet
    _, second = run(ObsCollector(ObsConfig()))
    assert second.cached == 0                     # hits skipped while observing
    _, third = run(None)
    assert third.cached == len(_RATES) * _REPS    # unobserved run gets hits


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

def test_write_trace_chrome_and_jsonl(tmp_path):
    _, obs = _observed_sweep()
    chrome_path = obs.write_trace(tmp_path / "trace.json")
    payload = json.loads(chrome_path.read_text())
    assert validate_chrome_trace(payload) == []
    assert len(payload["traceEvents"]) > 0

    jsonl_path = obs.write_trace(tmp_path / "trace.jsonl")
    with open(jsonl_path) as fh:
        records = spans_from_jsonl(fh)
    assert len(records) == obs.total_spans


def test_write_metrics_prometheus(tmp_path):
    _, obs = _observed_sweep()
    path = obs.write_metrics(tmp_path / "metrics.prom")
    samples = parse_prometheus(path.read_text())
    assert "switch_packet_ins_sent_total" in samples
    assert "flow_setup_delay_seconds_bucket" in samples


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------

def test_cli_writes_parseable_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.prom"
    code = cli_main(["fig5", "--rates", "20", "--reps", "1",
                     "--flows", str(_FLOWS), "--workers", "1", "--no-cache",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)])
    assert code == 0
    captured = capsys.readouterr()
    assert "obs:" in captured.err
    payload = json.loads(trace.read_text())
    assert validate_chrome_trace(payload) == []
    samples = parse_prometheus(metrics.read_text())
    assert "flow_setup_delay_seconds_count" in samples


def test_cli_rejects_bad_trace_sample(tmp_path, capsys):
    code = cli_main(["fig5", "--trace-out", str(tmp_path / "t.json"),
                     "--trace-sample", "0"])
    assert code == 2
    assert "trace-sample" in capsys.readouterr().err
