"""Run health monitors: heartbeats, invariants, seeded-fault self-test."""

from __future__ import annotations

import dataclasses

from repro.core import buffer_16
from repro.experiments import run_once, sweep, workload_a_factory
from repro.experiments.runner import derive_seed
from repro.obs import (ConservationMonitor, HealthMonitor,
                       MM1EnvelopeMonitor, ObsCollector, ObsConfig,
                       RunObserver, build_monitors)
from repro.simkit import RandomStreams, mbps

_RATE = 20.0
_FLOWS = 20


def _observed_run(config, monkey=None, rate=_RATE, flows=_FLOWS):
    """One observed repetition; ``monkey(testbed)`` may corrupt state."""
    observer = RunObserver(config, label="buffer-16", rate_mbps=rate)
    if monkey is not None:
        original_attach = observer.attach

        def attach(testbed, calibration=None):
            original_attach(testbed, calibration=calibration)
            monkey(testbed)

        observer.attach = attach
    seed = derive_seed(1, rate, 0)
    workload = workload_a_factory(n_flows=flows)(mbps(rate),
                                                 RandomStreams(seed))
    run_once(buffer_16(), workload, seed=seed, obs=observer)
    return observer.observation


def test_heartbeats_carry_progress_and_verdicts():
    observation = _observed_run(ObsConfig(monitor=True))
    beats = observation.heartbeats
    assert len(beats) > 5
    times = [beat.time for beat in beats]
    assert times == sorted(times)
    assert beats[-1].events_scheduled > beats[0].events_scheduled
    for beat in beats:
        assert beat.verdicts.get("conservation") == "ok"
        assert "ovs" in beat.buffer_units
    assert observation.violations == []


def test_heartbeat_dict_is_jsonl_ready():
    observation = _observed_run(ObsConfig(monitor=True))
    doc = observation.heartbeats[0].to_dict()
    for key in ("time", "beat", "events_scheduled", "events_delta",
                "heap_depth", "buffer_units", "verdicts"):
        assert key in doc


def test_monitoring_does_not_perturb_results():
    plain = sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
                  (_RATE,), 2, base_seed=1)
    obs = ObsCollector(ObsConfig(monitor=True, mm1_envelope=True))
    monitored = sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
                      (_RATE,), 2, base_seed=1, obs=obs)
    assert len(plain.rows) == len(monitored.rows)
    for row_a, row_b in zip(plain.rows, monitored.rows):
        assert dataclasses.asdict(row_a) == dataclasses.asdict(row_b)
    assert obs.total_violations == 0


def test_seeded_corruption_fires_exactly_one_violation():
    """The self-test the monitors exist for: corrupt one buffer counter
    mid-run and the conservation monitor must report it — once, naming
    the offending partition — while every later beat still shows the
    persistent 'violated' verdict."""
    def corrupt(testbed):
        mechanism = testbed.mechanisms[0]
        testbed.sim.schedule(0.100, mechanism.buffer._released.inc)

    observation = _observed_run(ObsConfig(monitor=True), monkey=corrupt,
                                flows=60)
    violations = observation.violations
    assert len(violations) == 1
    violation = violations[0]
    assert violation.monitor == "conservation"
    assert violation.subject == "ovs"
    assert violation.time >= 0.100
    assert "ovs" in violation.message
    late_verdicts = [beat.verdicts["conservation"]
                     for beat in observation.heartbeats
                     if beat.time > violation.time]
    assert late_verdicts and set(late_verdicts) == {"violated"}
    doc = violation.to_dict()
    assert doc["monitor"] == "conservation" and doc["subject"] == "ovs"


def test_parallel_monitor_summary_matches_serial():
    def run(workers):
        obs = ObsCollector(ObsConfig(monitor=True))
        sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
              (_RATE,), 2, base_seed=1, obs=obs,
              workers=(workers if workers > 1 else None))
        return obs.monitor_summary()

    assert run(1) == run(2)


def test_build_monitors_selects_checks():
    assert [m.name for m in build_monitors()] == ["conservation"]
    names = [m.name for m in build_monitors(mm1=True, rate_mbps=_RATE)]
    assert names == ["conservation", "mm1_envelope"]


def test_mm1_envelope_needs_enough_completions():
    monitor = MM1EnvelopeMonitor(rate_mbps=_RATE)

    class FakeTracker:
        def setup_delays(self):
            return [0.001] * 10  # below MIN_COMPLETED: no verdict yet

    class FakeMetrics:
        delay_tracker = FakeTracker()

    class FakeTestbed:
        metrics = FakeMetrics()
        mechanisms = ()

    assert monitor.check(FakeTestbed(), now=1.0) == []


def test_health_monitor_detach_cancels_pending_beat():
    from repro.simkit import Simulator

    class FakeTestbed:
        sim = Simulator()
        mechanisms = ()
        pool = None
        metrics = None

    testbed = FakeTestbed()
    monitor = HealthMonitor(interval=0.010)
    monitor.attach(testbed)
    assert monitor.attached
    testbed.sim.run(until=0.035)
    beats_at_detach = len(monitor.heartbeats)
    assert beats_at_detach >= 3
    monitor.detach()
    assert not monitor.attached
    testbed.sim.run(until=0.100)
    assert len(monitor.heartbeats) == beats_at_detach


def test_conservation_monitor_name_is_stable():
    assert ConservationMonitor().name == "conservation"
