"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.metrics import render_chart


def test_single_series_renders_marks_and_axes():
    chart = render_chart([0, 50, 100], {"line": [0.0, 5.0, 10.0]},
                         width=30, height=8)
    plot_rows = [line for line in chart.splitlines() if "|" in line]
    assert sum(row.count("*") for row in plot_rows) == 3
    assert "10" in chart                 # y max label
    assert "0" in chart                  # y min / x min
    assert "* line" in chart


def test_multiple_series_get_distinct_marks():
    chart = render_chart([0, 1], {"a": [0, 1], "b": [1, 0],
                                  "c": [0.5, 0.5]}, width=20, height=6)
    assert "* a" in chart and "o b" in chart and "+ c" in chart
    assert "o" in chart.splitlines()[0]  # b starts at the top


def test_monotone_series_is_monotone_on_the_grid():
    values = [float(v) for v in range(10)]
    chart = render_chart(list(range(10)), {"up": values},
                         width=40, height=10)
    rows = [line.split("|", 1)[1] for line in chart.splitlines()
            if "|" in line]
    columns = {}
    for row_index, row in enumerate(rows):
        for col, char in enumerate(row):
            if char == "*":
                columns[col] = row_index
    ordered = [columns[c] for c in sorted(columns)]
    assert ordered == sorted(ordered, reverse=True)   # up and to the right


def test_flat_series_renders_on_one_row():
    chart = render_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]},
                         width=20, height=6)
    rows_with_marks = [line for line in chart.splitlines() if "*" in line
                       and "|" in line]
    assert len(rows_with_marks) == 1


def test_labels_rendered():
    chart = render_chart([0, 1], {"s": [0, 1]}, y_label="Mbps",
                         x_label="rate")
    assert "y: Mbps" in chart and "x: rate" in chart


def test_validation():
    with pytest.raises(ValueError):
        render_chart([0, 1], {})
    with pytest.raises(ValueError):
        render_chart([0, 1], {"s": [1]})
    with pytest.raises(ValueError):
        render_chart([], {"s": []})
    with pytest.raises(ValueError):
        render_chart([0], {"s": [1]}, width=5)
