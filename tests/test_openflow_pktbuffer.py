"""Tests for the packet-granularity buffer incl. unit recycling."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.openflow import BufferFullError, PacketBuffer
from repro.packets import udp_packet


def _packet(i=0):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.0.{i % 250 + 1}", "10.0.0.2", 1000 + i, 2000)


def test_store_assigns_unique_buffer_ids():
    buffer = PacketBuffer(capacity=10)
    ids = {buffer.store(_packet(i), now=0.0) for i in range(10)}
    assert len(ids) == 10
    assert buffer.units_in_use == 10


def test_release_returns_stored_packet():
    buffer = PacketBuffer(capacity=4)
    packet = _packet()
    buffer_id = buffer.store(packet, now=0.0)
    assert buffer.release(buffer_id, now=1.0) is packet
    assert buffer.units_in_use == 0
    assert buffer.total_released == 1


def test_release_unknown_id_returns_none():
    buffer = PacketBuffer(capacity=4)
    assert buffer.release(999999, now=0.0) is None
    assert buffer.unknown_releases == 1


def test_double_release_counts_as_unknown():
    buffer = PacketBuffer(capacity=4)
    buffer_id = buffer.store(_packet(), now=0.0)
    buffer.release(buffer_id, now=1.0)
    assert buffer.release(buffer_id, now=2.0) is None


def test_store_when_full_raises():
    buffer = PacketBuffer(capacity=2)
    buffer.store(_packet(1), now=0.0)
    buffer.store(_packet(2), now=0.0)
    with pytest.raises(BufferFullError):
        buffer.store(_packet(3), now=0.0)
    assert buffer.full_rejections == 1


def test_peek_does_not_release():
    buffer = PacketBuffer(capacity=2)
    packet = _packet()
    buffer_id = buffer.store(packet, now=0.0)
    assert buffer.peek(buffer_id) is packet
    assert buffer_id in buffer
    assert buffer.units_in_use == 1


def test_reclaim_delay_keeps_unit_unavailable():
    buffer = PacketBuffer(capacity=1, reclaim_delay=1.0)
    buffer_id = buffer.store(_packet(1), now=0.0)
    buffer.release(buffer_id, now=0.5)
    # Unit is cooling until t = 1.5.
    assert buffer.occupancy(1.0) == 1
    with pytest.raises(BufferFullError):
        buffer.store(_packet(2), now=1.0)
    assert buffer.occupancy(1.6) == 0
    buffer.store(_packet(3), now=1.6)


def test_no_reclaim_delay_frees_immediately():
    buffer = PacketBuffer(capacity=1, reclaim_delay=0.0)
    buffer_id = buffer.store(_packet(1), now=0.0)
    buffer.release(buffer_id, now=0.5)
    buffer.store(_packet(2), now=0.5)


def test_peak_units_includes_cooling():
    buffer = PacketBuffer(capacity=8, reclaim_delay=10.0)
    ids = [buffer.store(_packet(i), now=float(i)) for i in range(3)]
    for i, buffer_id in enumerate(ids):
        buffer.release(buffer_id, now=3.0 + i)
    buffer.store(_packet(9), now=6.5)
    # 3 cooling + 1 live at t=6.5.
    assert buffer.peak_units == 4


def test_expire_older_than():
    buffer = PacketBuffer(capacity=8)
    old = buffer.store(_packet(1), now=0.0)
    new = buffer.store(_packet(2), now=5.0)
    expired = buffer.expire_older_than(cutoff=3.0)
    assert expired == [old]
    assert new in buffer


def test_expiry_has_own_counter_and_cooling():
    """Aged-out units are expiries (not releases) and recycle through
    the same reclaim cooling ring as packet_out-released units."""
    buffer = PacketBuffer(capacity=1, reclaim_delay=1.0)
    buffer.store(_packet(1), now=0.0)
    buffer.expire_older_than(cutoff=4.0, now=5.0)
    assert buffer.total_expired == 1
    assert buffer.total_released == 0
    assert buffer.unknown_releases == 0
    # Cooling until t = 6.0: the slot is not allocatable yet.
    assert buffer.occupancy(5.5) == 1
    with pytest.raises(BufferFullError):
        buffer.store(_packet(2), now=5.5)
    assert buffer.occupancy(6.1) == 0
    buffer.store(_packet(3), now=6.1)


def test_clear_frees_everything():
    buffer = PacketBuffer(capacity=4, reclaim_delay=5.0)
    a = buffer.store(_packet(1), now=0.0)
    buffer.store(_packet(2), now=0.0)
    buffer.release(a, now=0.1)
    buffer.clear()
    assert buffer.units_in_use == 0
    assert buffer.occupancy(0.2) == 0


def test_validation():
    with pytest.raises(ValueError):
        PacketBuffer(capacity=-1)
    with pytest.raises(ValueError):
        PacketBuffer(capacity=1, reclaim_delay=-0.1)


@given(st.lists(st.sampled_from(["store", "release"]), max_size=60))
def test_occupancy_never_exceeds_capacity(operations):
    """Property: no interleaving of operations overflows the buffer."""
    buffer = PacketBuffer(capacity=5, reclaim_delay=0.5)
    live_ids = []
    now = 0.0
    for op in operations:
        now += 0.1
        if op == "store":
            try:
                live_ids.append(buffer.store(_packet(), now=now))
            except BufferFullError:
                pass
        elif live_ids:
            buffer.release(live_ids.pop(0), now=now)
        assert 0 <= buffer.occupancy(now) <= 5
        assert buffer.units_in_use == len(live_ids)
