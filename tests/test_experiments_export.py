"""Tests for CSV export of sweep results."""

from __future__ import annotations

import csv
import io

import pytest

from repro.core import buffer_256
from repro.experiments import (experiment_to_csv, run_benefits_experiment,
                               save_experiment_csv, sweep, sweep_rows,
                               sweep_to_csv, workload_a_factory)
from repro.experiments.cli import main as cli_main


@pytest.fixture(scope="module")
def small_sweep():
    return sweep(buffer_256(), workload_a_factory(n_flows=20), (20, 60),
                 repetitions=1, base_seed=2)


@pytest.fixture(scope="module")
def small_experiment():
    return run_benefits_experiment(rates_mbps=(20,), repetitions=1,
                                   n_flows=20)


def test_sweep_rows_structure(small_sweep):
    rows = sweep_rows(small_sweep)
    assert len(rows) == 2
    assert rows[0]["rate_mbps"] == 20
    assert rows[1]["rate_mbps"] == 60
    assert rows[0]["completed_flows"] == 20
    assert rows[0]["setup_delay_ms"] > 0


def test_sweep_to_csv_parses_back(small_sweep):
    text = sweep_to_csv(small_sweep)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 2
    assert float(parsed[1]["load_up_mbps"]) > float(
        parsed[0]["load_up_mbps"])


def test_experiment_csv_has_mechanism_column(small_experiment):
    parsed = list(csv.DictReader(io.StringIO(
        experiment_to_csv(small_experiment))))
    mechanisms = {row["mechanism"] for row in parsed}
    assert mechanisms == {"no-buffer", "buffer-16", "buffer-256"}
    assert len(parsed) == 3      # one rate x three mechanisms


def test_save_experiment_csv(tmp_path, small_experiment):
    target = save_experiment_csv(small_experiment, str(tmp_path))
    assert target.name == "benefits.csv"
    assert "no-buffer" in target.read_text()


def test_cli_csv_flag(tmp_path, capsys):
    code = cli_main(["fig2a", "--rates", "20", "--reps", "1",
                     "--flows", "15", "--csv", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "benefits.csv").exists()
