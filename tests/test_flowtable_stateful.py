"""Model-based stateful testing of the flow table.

Hypothesis drives random sequences of inserts, lookups, deletes and time
advances against both the real :class:`FlowTable` and a brutally simple
reference model (a list scanned linearly).  Any divergence in lookup
results, sizes or expiry behaviour is a bug in the optimized table (its
exact-match hash index, lazy expiry, or eviction bookkeeping).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 rule)

from repro.openflow import FlowEntry, FlowTable, Match, OutputAction
from repro.packets import udp_packet

#: A tiny universe of addresses so operations collide often.
_IPS = [f"10.0.0.{i}" for i in range(1, 5)]
_PORTS = [1000, 2000]


def _packet(src_ip, dst_ip, src_port, dst_port):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      src_ip, dst_ip, src_port, dst_port)


class _ReferenceTable:
    """The obviously-correct model: a list, scanned in full."""

    def __init__(self):
        self.entries = []           # (match, priority, entry_id, state)
        self._next_id = 0

    def insert(self, match, priority, now, idle, hard):
        # Replacement semantics: identical match+priority replaces
        # (exact matches replace on match alone, like the real table).
        # A replacement keeps the replaced entry's id — its tie-break
        # rank — mirroring the real table's in-place slot reuse.
        def replaces(existing):
            if existing["match"] == match:
                return (existing["match"].wildcard_count == 0
                        or existing["priority"] == priority)
            return False

        replaced = [e for e in self.entries if replaces(e)]
        if replaced:
            entry_id = replaced[0]["id"]
        else:
            self._next_id += 1
            entry_id = self._next_id
        self.entries = [e for e in self.entries if not replaces(e)]
        self.entries.append({
            "match": match, "priority": priority, "id": entry_id,
            "installed": now, "last_used": now, "idle": idle,
            "hard": hard})

    def _alive(self, entry, now):
        if entry["hard"] > 0 and now - entry["installed"] >= entry["hard"]:
            return False
        if entry["idle"] > 0 and now - entry["last_used"] >= entry["idle"]:
            return False
        return True

    def lookup(self, packet, in_port, now):
        self.entries = [e for e in self.entries if self._alive(e, now)]
        candidates = [e for e in self.entries
                      if e["match"].matches(packet, in_port)]
        if not candidates:
            return None
        # Tie-break mirrors the real table: higher priority wins; at
        # equal priority an exact entry beats wildcards, then earlier id.
        best = max(candidates,
                   key=lambda e: (e["priority"],
                                  e["match"].wildcard_count == 0,
                                  -e["id"]))
        best["last_used"] = now
        return best

    def remove_covered(self, match, now):
        self.entries = [e for e in self.entries if self._alive(e, now)]
        removed = [e for e in self.entries if match.covers(e["match"])]
        self.entries = [e for e in self.entries
                        if not match.covers(e["match"])]
        return len(removed)

    def live_count(self, now):
        return sum(1 for e in self.entries if self._alive(e, now))


class FlowTableMachine(RuleBasedStateMachine):
    """Random operation sequences, both implementations in lockstep."""

    def __init__(self):
        super().__init__()
        self.real = FlowTable(capacity=10_000)   # no eviction pressure
        self.model = _ReferenceTable()
        self.now = 0.0

    matches = Bundle("matches")

    @rule(target=matches,
          src=st.sampled_from(_IPS) | st.none(),
          dst=st.sampled_from(_IPS) | st.none(),
          sport=st.sampled_from(_PORTS) | st.none(),
          dport=st.sampled_from(_PORTS) | st.none(),
          in_port=st.sampled_from([1, 2]) | st.none())
    def make_match(self, src, dst, sport, dport, in_port):
        return Match(in_port=in_port, ip_src=src, ip_dst=dst,
                     tp_src=sport, tp_dst=dport)

    @rule(match=matches, priority=st.integers(1, 5),
          idle=st.sampled_from([0.0, 2.0]),
          hard=st.sampled_from([0.0, 5.0]))
    def insert(self, match, priority, idle, hard):
        entry = FlowEntry(match=match, actions=(OutputAction(2),),
                          priority=priority, idle_timeout=idle,
                          hard_timeout=hard)
        self.real.insert(entry, now=self.now)
        self.model.insert(match, priority, self.now, idle, hard)

    @rule(src=st.sampled_from(_IPS), dst=st.sampled_from(_IPS),
          sport=st.sampled_from(_PORTS), dport=st.sampled_from(_PORTS),
          in_port=st.sampled_from([1, 2]), priority=st.integers(1, 5),
          idle=st.sampled_from([0.0, 2.0]))
    def insert_exact(self, src, dst, sport, dport, in_port, priority,
                     idle):
        """Fully-exact entries exercise the real table's hash index."""
        match = Match.exact_from_packet(_packet(src, dst, sport, dport),
                                        in_port=in_port)
        entry = FlowEntry(match=match, actions=(OutputAction(2),),
                          priority=priority, idle_timeout=idle)
        self.real.insert(entry, now=self.now)
        self.model.insert(match, priority, self.now, idle, 0.0)

    @rule(src=st.sampled_from(_IPS), dst=st.sampled_from(_IPS),
          sport=st.sampled_from(_PORTS), dport=st.sampled_from(_PORTS),
          in_port=st.sampled_from([1, 2]))
    def lookup(self, src, dst, sport, dport, in_port):
        packet = _packet(src, dst, sport, dport)
        real_hit = self.real.lookup(packet, in_port, now=self.now)
        model_hit = self.model.lookup(packet, in_port, now=self.now)
        assert (real_hit is None) == (model_hit is None)
        if real_hit is not None:
            # Same winning rule: identical match and priority.
            assert real_hit.priority == model_hit["priority"]
            assert real_hit.match == model_hit["match"]

    @rule(match=matches)
    def remove_covered(self, match):
        real_removed = self.real.remove(match, now=self.now)
        model_removed = self.model.remove_covered(match, self.now)
        assert real_removed == model_removed

    @rule(delta=st.sampled_from([0.5, 1.5, 3.0]))
    def advance_time(self, delta):
        self.now += delta

    @rule()
    def sweep(self):
        self.real.expire(self.now)
        # The model expires lazily; force it for the size invariant.
        self.model.entries = [e for e in self.model.entries
                              if self.model._alive(e, self.now)]

    @invariant()
    def sizes_agree_after_full_expiry(self):
        # The real table may still hold expired entries (lazy removal),
        # so compare on live counts only.
        live_real = sum(1 for e in self.real.entries()
                        if not e.is_expired(self.now))
        assert live_real == self.model.live_count(self.now)


FlowTableMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestFlowTableAgainstModel = FlowTableMachine.TestCase
