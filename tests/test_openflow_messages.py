"""Tests for OpenFlow message wire sizes and invariants."""

from __future__ import annotations

import pytest

from repro.openflow import (OFP_HEADER_LEN, OFP_NO_BUFFER, BarrierReply,
                            BarrierRequest, EchoReply, EchoRequest,
                            ErrorMsg, FeaturesReply, FlowMod, Hello, Match,
                            OutputAction, PacketIn, PacketOut, next_xid)
from repro.packets import udp_packet


def _packet(frame_len=1000):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      "10.0.0.1", "10.0.0.2", 1, 2, frame_len=frame_len)


def test_xids_are_unique_and_increasing():
    first = next_xid()
    second = next_xid()
    assert second > first


def test_every_message_gets_distinct_xid():
    a, b = Hello(), Hello()
    assert a.xid != b.xid


def test_hello_is_bare_header():
    assert Hello().wire_len == OFP_HEADER_LEN


def test_echo_carries_payload():
    assert EchoRequest(payload_len=16).wire_len == OFP_HEADER_LEN + 16
    assert EchoReply(payload_len=16).wire_len == OFP_HEADER_LEN + 16


def test_packet_in_unbuffered_carries_full_frame():
    packet = _packet(1000)
    message = PacketIn(packet=packet, buffer_id=OFP_NO_BUFFER,
                       data_len=packet.wire_len)
    assert message.data_len == 1000
    assert message.wire_len > 1000
    assert not message.is_buffered
    assert message.total_len == 1000


def test_packet_in_buffered_carries_fragment():
    packet = _packet(1000)
    buffered = PacketIn(packet=packet, buffer_id=77, data_len=128)
    unbuffered = PacketIn(packet=packet, buffer_id=OFP_NO_BUFFER,
                          data_len=packet.wire_len)
    assert buffered.is_buffered
    assert buffered.wire_len < unbuffered.wire_len / 4


def test_packet_in_requires_packet():
    with pytest.raises(ValueError):
        PacketIn(packet=None)


def test_packet_out_buffered_must_not_enclose_data():
    with pytest.raises(ValueError):
        PacketOut(buffer_id=5, data_len=100)


def test_packet_out_unbuffered_must_enclose_packet():
    with pytest.raises(ValueError):
        PacketOut(buffer_id=OFP_NO_BUFFER, packet=None)


def test_packet_out_sizes():
    packet = _packet(1000)
    buffered = PacketOut(actions=(OutputAction(2),), buffer_id=9)
    unbuffered = PacketOut(actions=(OutputAction(2),),
                           buffer_id=OFP_NO_BUFFER,
                           data_len=packet.wire_len, packet=packet)
    assert buffered.wire_len < 40
    assert unbuffered.wire_len > 1000
    assert buffered.is_buffered and not unbuffered.is_buffered


def test_flow_mod_size_includes_actions():
    bare = FlowMod(match=Match())
    with_actions = FlowMod(match=Match(), actions=(OutputAction(1),
                                                   OutputAction(2)))
    assert with_actions.wire_len == bare.wire_len + 16


def test_flow_mod_is_much_smaller_than_full_frame_packet_out():
    packet = _packet(1000)
    flow_mod = FlowMod(match=Match.exact_from_packet(packet),
                       actions=(OutputAction(2),))
    assert flow_mod.wire_len < 100


def test_barrier_messages_are_bare_headers():
    assert BarrierRequest().wire_len == OFP_HEADER_LEN
    assert BarrierReply().wire_len == OFP_HEADER_LEN


def test_features_reply_scales_with_ports():
    small = FeaturesReply(ports=(1,))
    large = FeaturesReply(ports=(1, 2, 3))
    assert large.wire_len == small.wire_len + 2 * 48


def test_error_message_has_context():
    assert ErrorMsg().wire_len > OFP_HEADER_LEN


def test_in_reply_to_defaults_none():
    assert Hello().in_reply_to is None
    assert FlowMod(in_reply_to=4).in_reply_to == 4


def test_kind_labels_are_lowercase_names():
    packet = _packet()
    assert PacketIn(packet=packet).kind == "packetin"
    assert FlowMod().kind == "flowmod"
    assert PacketOut(buffer_id=1).kind == "packetout"
