"""Tests for generator-driven processes."""

from __future__ import annotations

import pytest

from repro.simkit import Interrupt, ProcessError, Simulator


def test_process_runs_and_returns_value(sim):
    def body():
        yield sim.timeout(1.0)
        return "finished"
    process = sim.process(body())
    sim.run()
    assert process.triggered and process.ok
    assert process.value == "finished"


def test_process_receives_event_values(sim):
    def body():
        value = yield sim.timeout(1.0, value=41)
        return value + 1
    process = sim.process(body())
    sim.run()
    assert process.value == 42


def test_process_advances_clock_through_waits(sim):
    times = []
    def body():
        for _ in range(3):
            yield sim.timeout(1.0)
            times.append(sim.now)
    sim.process(body())
    sim.run()
    assert times == [1.0, 2.0, 3.0]


def test_process_body_does_not_run_synchronously(sim):
    seen = []
    def body():
        seen.append("started")
        yield sim.timeout(1.0)
    sim.process(body())
    assert seen == []  # starts at the current instant, not inside creator
    sim.run()
    assert seen == ["started"]


def test_process_failure_wraps_exception(sim):
    def body():
        yield sim.timeout(1.0)
        raise ValueError("inner")
    process = sim.process(body())
    process.add_callback(lambda e: None)
    sim.run()
    assert not process.ok
    assert isinstance(process.value, ProcessError)
    assert isinstance(process.value.original, ValueError)


def test_failed_event_is_thrown_into_process(sim):
    source = sim.event()
    caught = []
    def body():
        try:
            yield source
        except RuntimeError as exc:
            caught.append(str(exc))
        return "survived"
    process = sim.process(body())
    sim.schedule(1.0, lambda: source.fail(RuntimeError("from event")))
    sim.run()
    assert caught == ["from event"]
    assert process.value == "survived"


def test_process_waits_on_other_process(sim):
    def child():
        yield sim.timeout(2.0)
        return "child-result"
    def parent():
        result = yield sim.process(child())
        return f"got {result}"
    process = sim.process(parent())
    sim.run()
    assert process.value == "got child-result"


def test_interrupt_wakes_blocked_process(sim):
    progress = []
    def body():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            progress.append((sim.now, interrupt.cause))
        return "done"
    process = sim.process(body())
    sim.schedule(1.0, process.interrupt, "hurry")
    sim.run()
    assert progress == [(1.0, "hurry")]
    assert process.value == "done"


def test_interrupt_after_completion_is_noop(sim):
    def body():
        yield sim.timeout(1.0)
    process = sim.process(body())
    sim.run()
    process.interrupt()
    sim.run()
    assert process.ok


def test_unhandled_interrupt_fails_process(sim):
    def body():
        yield sim.timeout(100.0)
    process = sim.process(body())
    process.add_callback(lambda e: None)
    sim.schedule(1.0, process.interrupt)
    sim.run()
    assert not process.ok
    assert isinstance(process.value, ProcessError)


def test_yielding_non_event_fails_process(sim):
    def body():
        yield 42
    process = sim.process(body())
    process.add_callback(lambda e: None)
    sim.run()
    assert not process.ok


def test_non_generator_rejected(sim):
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_is_alive_tracks_lifecycle(sim):
    def body():
        yield sim.timeout(1.0)
    process = sim.process(body())
    assert process.is_alive
    sim.run()
    assert not process.is_alive
