"""Regression tests for the ``BENCH_kernel.json`` record builder."""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import kernelrecord


def test_build_record_skips_probes_missing_from_after():
    # A partial measuring run (only one probe re-measured) must still
    # produce a record instead of KeyError-ing on the absent probes.
    record = kernelrecord.build_record({"event_loop": 0.01},
                                       testbed_window_s=1.0)
    assert set(record["benchmarks"]) == {"event_loop"}
    bench = record["benchmarks"]["event_loop"]
    assert bench["after"]["seconds"] == 0.01
    assert bench["speedup"] > 0


def test_build_record_carries_after_only_probes():
    # A probe with no committed *before* still lands in the record,
    # without a fabricated speedup.
    record = kernelrecord.build_record(
        {"event_loop": 0.01, "brand_new_probe": 0.5},
        testbed_window_s=1.0)
    bench = record["benchmarks"]["brand_new_probe"]
    assert bench["after"]["seconds"] == 0.5
    assert "before" not in bench
    assert "speedup" not in bench


def test_committed_record_has_shard_scaling_section():
    record = kernelrecord.load_baseline()
    section = record["shard_scaling"]
    assert section["scenario"] == "line:4"
    assert section["cpu_count"] >= 1
    assert section["floor_workers_2"] == 1.8
    assert {"1", "2", "4"} <= set(section["workers"])
    for point in section["workers"].values():
        assert point["seconds"] > 0
        assert point["events_per_sec"] > 0


def test_committed_record_has_shard_transport_section():
    record = kernelrecord.load_baseline()
    section = record["shard_transport"]
    assert section["scenario"] == "line:4"
    assert section["cpu_count"] >= 1
    assert section["floor_overhead_ratio_shm"] == 3.0
    assert {"pickle", "framed", "shm"} <= set(section["codecs"])
    for point in section["codecs"].values():
        assert point["rounds_wall_seconds"] > 0
        assert point["overhead_ms_per_round"] > 0
    # The binary codecs put strictly fewer bytes on the wire than pickle.
    codecs = section["codecs"]
    assert codecs["framed"]["bytes_total"] < codecs["pickle"]["bytes_total"]
    assert codecs["shm"]["bytes_total"] <= codecs["framed"]["bytes_total"]
