"""Tests for the deficit-round-robin egress scheduler."""

from __future__ import annotations

import pytest

from repro.netsim import Link
from repro.packets import (EthernetHeader, IPv4Header, PROTO_UDP, Packet,
                           UDPHeader)
from repro.simkit import mbps
from repro.switchsim import CLASS_BEST_EFFORT, CLASS_EXPEDITED
from repro.switchsim.qos import DeficitRoundRobinScheduler, classify_dscp


def _packet(dscp=0, frame_len=1000, tag=0):
    eth = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02")
    ip = IPv4Header("10.0.0.1", "10.0.0.2", protocol=PROTO_UDP, dscp=dscp)
    l4 = UDPHeader(1000 + tag % 1000, 2000)
    return Packet(eth=eth, ip=ip, l4=l4, payload_len=frame_len - 42)


def _scheduler(sim, weights=None, bandwidth=mbps(8)):
    link = Link(sim, "egress", bandwidth, propagation_delay=0.0)
    delivered = []
    link.connect(lambda p: delivered.append(p))
    scheduler = DeficitRoundRobinScheduler(sim, link, weights=weights)
    return scheduler, delivered


def test_single_class_behaves_fifo(sim):
    scheduler, delivered = _scheduler(sim)
    packets = [_packet(dscp=0, tag=i) for i in range(5)]
    for packet in packets:
        scheduler.enqueue(packet)
    sim.run(until=1.0)
    assert delivered == packets


def test_bandwidth_shared_by_weight(sim):
    """With 3:1 weights and saturation, service is ~3:1 over a window."""
    scheduler, delivered = _scheduler(
        sim, weights={CLASS_EXPEDITED: 3.0, CLASS_BEST_EFFORT: 1.0})
    for tag in range(60):
        scheduler.enqueue(_packet(dscp=46, tag=tag))
        scheduler.enqueue(_packet(dscp=0, tag=tag))
    # 1 ms per frame at 8 Mbps: inspect the first 40 transmissions.
    sim.run(until=0.0405)
    classes = [classify_dscp(p) for p in delivered]
    expedited_share = classes.count(CLASS_EXPEDITED) / len(classes)
    assert expedited_share == pytest.approx(0.75, abs=0.08)


def test_no_starvation_under_high_priority_flood(sim):
    """Unlike strict priority, the low class keeps making progress."""
    scheduler, delivered = _scheduler(
        sim, weights={CLASS_EXPEDITED: 4.0, CLASS_BEST_EFFORT: 1.0})
    for tag in range(50):
        scheduler.enqueue(_packet(dscp=46, tag=tag))
    scheduler.enqueue(_packet(dscp=0, tag=99))
    sim.run(until=0.015)        # ~15 transmissions
    classes = [classify_dscp(p) for p in delivered]
    assert CLASS_BEST_EFFORT in classes   # served long before the flood ends


def test_deficit_accumulates_for_large_frames(sim):
    """A frame bigger than one quantum still goes out after a few rounds."""
    scheduler, delivered = _scheduler(
        sim, weights={CLASS_EXPEDITED: 1.0, CLASS_BEST_EFFORT: 1.0})
    big = _packet(dscp=0, frame_len=1400, tag=1)
    scheduler.enqueue(big)
    for tag in range(3):
        scheduler.enqueue(_packet(dscp=46, frame_len=100, tag=tag))
    sim.run(until=1.0)
    assert big in delivered
    assert len(delivered) == 4


def test_queue_limit_and_stats(sim):
    scheduler, delivered = _scheduler(sim)
    scheduler.queue_limit = 2
    outcomes = [scheduler.enqueue(_packet(dscp=0, tag=i)) for i in range(5)]
    assert outcomes.count(False) == 2
    assert scheduler.stats[CLASS_BEST_EFFORT].dropped == 2
    sim.run(until=1.0)


def test_validation(sim):
    link = Link(sim, "l", mbps(8))
    link.connect(lambda p: None)
    with pytest.raises(ValueError):
        DeficitRoundRobinScheduler(sim, link, quantum_bytes=0)
    with pytest.raises(ValueError):
        DeficitRoundRobinScheduler(sim, link, queue_limit=0)
    with pytest.raises(ValueError):
        DeficitRoundRobinScheduler(sim, link,
                                   weights={CLASS_EXPEDITED: 0.0})
    scheduler = DeficitRoundRobinScheduler(sim, link)
    with pytest.raises(ValueError):
        scheduler.enqueue(_packet(), service_class=1234)
