"""Bidirectional traffic with a pure learning controller (no provisioning).

With an empty host locator the app behaves like a classic learning
switch: unknown destinations flood, and every packet_in teaches the
controller where its source lives.  The reverse direction then gets a
proper rule — exercising the host2→host1 data path the paper's
unidirectional workloads never touch.
"""

from __future__ import annotations

from repro.controllersim import HostLocator
from repro.core import buffer_256
from repro.experiments import build_testbed
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import HOST1_IP, HOST1_MAC, HOST2_IP, HOST2_MAC
from repro.packets import udp_packet
from repro.trafficgen import single_packet_flows


def _forward_packet():
    return udp_packet(HOST1_MAC, HOST2_MAC, HOST1_IP, HOST2_IP,
                      5000, 6000, flow_id=0, seq_in_flow=0)


def _reverse_packet():
    return udp_packet(HOST2_MAC, HOST1_MAC, HOST2_IP, HOST1_IP,
                      6000, 5000, flow_id=1, seq_in_flow=0)


def _learning_testbed():
    workload = single_packet_flows(mbps(10), n_flows=1,
                                   rng=RandomStreams(90))
    testbed = build_testbed(buffer_256(), workload, seed=90)
    # Strip the provisioned knowledge: pure learning.
    testbed.controller.app.locator = HostLocator()
    testbed.controller.start_handshake()
    return testbed


def test_unknown_destination_floods_then_reverse_gets_a_rule():
    testbed = _learning_testbed()
    sim = testbed.sim

    # Forward: host1 -> host2.  Destination unknown -> flooded, no rule.
    sim.schedule(0.02, testbed.host1.send, _forward_packet())
    sim.run(until=0.5)
    assert len(testbed.host2.received) == 1
    assert testbed.controller.app.floods == 1
    assert len(testbed.switch.flow_table) == 0

    # Reverse: host2 -> host1.  host1 was learned from the first
    # packet_in, so this one gets a real rule (no flood).
    sim.schedule(0.0, testbed.host2.send, _reverse_packet())
    sim.run(until=1.0)
    assert len(testbed.host1.received) == 1
    assert testbed.controller.app.floods == 1        # unchanged
    assert len(testbed.switch.flow_table) == 1

    # And subsequent reverse traffic is pure fast path.
    packet_ins_before = testbed.switch.agent.packet_ins_sent
    sim.schedule(0.0, testbed.host2.send, _reverse_packet())
    sim.run(until=1.5)
    assert len(testbed.host1.received) == 2
    assert testbed.switch.agent.packet_ins_sent == packet_ins_before
    testbed.shutdown()


def test_learned_locations_are_per_source_port():
    testbed = _learning_testbed()
    sim = testbed.sim
    sim.schedule(0.02, testbed.host1.send, _forward_packet())
    sim.run(until=0.5)
    locator = testbed.controller.app.locator
    assert locator.locate(ip=HOST1_IP, datapath_id=1) == 1
    assert locator.locate(ip=HOST2_IP, datapath_id=1) is None
    testbed.shutdown()
