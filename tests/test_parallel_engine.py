"""Engine tests: parallel == serial, crash retry, order independence."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import buffer_16, buffer_256
from repro.experiments import sweep, workload_a_factory
from repro.parallel import (SweepExecutionError, SweepJob, execute_task,
                            parallel_sweep, register_jobs, resolve_workers,
                            run_sweep_jobs)
from repro.parallel.engine import _assemble
from repro.simkit import mbps
from repro.trafficgen import single_packet_flows

_RATES = (20, 80)
_REPS = 2
_FLOWS = 20


def _rows_equal(a, b):
    assert len(a.rows) == len(b.rows)
    for row_a, row_b in zip(a.rows, b.rows):
        assert dataclasses.asdict(row_a) == dataclasses.asdict(row_b)


# ---------------------------------------------------------------------------
# bit-identical equivalence
# ---------------------------------------------------------------------------

def test_workers_1_equals_workers_4():
    """The acceptance bar: fig2a-style rows identical at 1 and 4 workers."""
    factory = workload_a_factory(n_flows=_FLOWS)
    one = parallel_sweep(buffer_256(), factory, _RATES, _REPS,
                         base_seed=1, workers=1)
    four = parallel_sweep(buffer_256(), factory, _RATES, _REPS,
                          base_seed=1, workers=4)
    _rows_equal(one, four)


def test_parallel_equals_legacy_serial_sweep():
    factory = workload_a_factory(n_flows=_FLOWS)
    serial = sweep(buffer_256(), factory, _RATES, _REPS, base_seed=1)
    parallel = sweep(buffer_256(), factory, _RATES, _REPS, base_seed=1,
                     workers=4)
    _rows_equal(serial, parallel)


def test_multi_job_study_matches_per_config_serial():
    """All mechanisms shard into one pool; each sweep still matches."""
    factory = workload_a_factory(n_flows=_FLOWS)
    jobs = [SweepJob(config=config, factory=factory, rates_mbps=_RATES,
                     repetitions=_REPS, base_seed=3)
            for config in (buffer_16(), buffer_256())]
    sweeps, report = run_sweep_jobs(jobs, workers=3)
    assert report.ok
    assert report.total_tasks == 2 * len(_RATES) * _REPS
    for config in (buffer_16(), buffer_256()):
        serial = sweep(config, factory, _RATES, _REPS, base_seed=3)
        _rows_equal(serial, sweeps[config.label])


def test_completion_order_does_not_change_aggregates():
    """Regression: reordering repetitions must not change any row field.

    Executes the task grid in reverse (an adversarial completion order)
    and reassembles; the engine's canonical-order assembly must produce
    exactly the serial sweep.
    """
    factory = workload_a_factory(n_flows=_FLOWS)
    job = SweepJob(config=buffer_256(), factory=factory, rates_mbps=_RATES,
                   repetitions=3, base_seed=2)
    register_jobs([job])
    results = {}
    for task in reversed(job.tasks()):
        results[task.key] = execute_task(task)
    reassembled = _assemble([job], results)[job.label]
    serial = sweep(buffer_256(), factory, _RATES, 3, base_seed=2)
    _rows_equal(serial, reassembled)


# ---------------------------------------------------------------------------
# crash injection, bounded retry, partial-failure report
# ---------------------------------------------------------------------------

def _crash_at_50(rate_bps, rng):
    if abs(rate_bps - mbps(50)) < 1.0:
        raise RuntimeError("injected crash")
    return single_packet_flows(rate_bps, n_flows=10, rng=rng)


@pytest.mark.parametrize("workers", [1, 2])
def test_crashing_task_is_retried_then_reported(workers):
    job = SweepJob(config=buffer_256(), factory=_crash_at_50,
                   rates_mbps=(20, 50), repetitions=2, base_seed=1)
    sweeps, report = run_sweep_jobs([job], workers=workers,
                                    max_task_retries=1)
    assert not report.ok
    # Both rate-50 repetitions failed, each after 1 + 1 retry attempts.
    assert [(f.rate_mbps, f.rep) for f in report.failures] == [(50, 0),
                                                               (50, 1)]
    assert all(f.attempts == 2 for f in report.failures)
    assert all("injected crash" in f.error for f in report.failures)
    # The healthy rate survives; the dead rate has no row.
    assert sweeps[job.label].rates == [20]
    text = report.format()
    assert "FAILED" in text and "injected crash" in text


def test_parallel_sweep_raises_on_partial_failure():
    with pytest.raises(SweepExecutionError) as excinfo:
        parallel_sweep(buffer_256(), _crash_at_50, (20, 50), 1,
                       base_seed=1, workers=2, max_task_retries=1)
    assert "injected crash" in str(excinfo.value)
    assert not excinfo.value.report.ok


def test_partial_failure_rows_match_serial_for_surviving_rates():
    result = parallel_sweep(buffer_256(), _crash_at_50, (20, 50), 2,
                            base_seed=1, workers=2, max_task_retries=0,
                            raise_on_failure=False)
    serial = sweep(buffer_256(),
                   lambda rate_bps, rng: single_packet_flows(
                       rate_bps, n_flows=10, rng=rng),
                   (20,), 2, base_seed=1)
    _rows_equal(serial, result)


# ---------------------------------------------------------------------------
# plumbing
# ---------------------------------------------------------------------------

def test_resolve_workers():
    import os
    assert resolve_workers(None) == (os.cpu_count() or 1)
    assert resolve_workers(3) == 3
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_duplicate_labels_rejected():
    factory = workload_a_factory(n_flows=5)
    jobs = [SweepJob(config=buffer_256(), factory=factory,
                     rates_mbps=(20,), repetitions=1) for _ in range(2)]
    with pytest.raises(ValueError):
        run_sweep_jobs(jobs, workers=1)


def test_report_counts_executed_and_cached():
    factory = workload_a_factory(n_flows=5)
    job = SweepJob(config=buffer_256(), factory=factory, rates_mbps=(20,),
                   repetitions=2, base_seed=0)
    _, report = run_sweep_jobs([job], workers=1)
    assert report.total_tasks == 2
    assert report.executed == 2
    assert report.cached == 0
    assert report.ok
    assert "ok" in report.format()
