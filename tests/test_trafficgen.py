"""Tests for schedules, workloads and the pktgen driver."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.netsim import Host, Link
from repro.simkit import RandomStreams, Simulator, mbps, transmission_delay
from repro.trafficgen import (PacketGenerator, batched_multi_packet_flows,
                              constant_gap_times, cross_sequence,
                              poisson_times, single_packet_flows)


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------

def test_constant_gap_times_paced_at_rate():
    times = constant_gap_times(4, frame_len=1000, rate_bps=mbps(100))
    gap = transmission_delay(1000, mbps(100))
    assert times == pytest.approx([0.0, gap, 2 * gap, 3 * gap])


def test_constant_gap_jitter_requires_rng():
    with pytest.raises(ValueError):
        constant_gap_times(2, 1000, mbps(100), jitter_fraction=0.1)


def test_constant_gap_jitter_bounded():
    rng = RandomStreams(1)
    gap = transmission_delay(1000, mbps(100))
    times = constant_gap_times(100, 1000, mbps(100), jitter_fraction=0.1,
                               rng=rng)
    for i, t in enumerate(times):
        assert abs(t - i * gap) <= 0.1 * gap + 1e-12
        assert t >= 0.0


def test_poisson_times_monotone():
    rng = RandomStreams(2)
    times = poisson_times(50, rate_pps=1000, rng=rng)
    assert all(b > a for a, b in zip(times, times[1:]))


def test_cross_sequence_order():
    order = cross_sequence(3, 2)
    assert order == [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]


def test_cross_sequence_validation():
    with pytest.raises(ValueError):
        cross_sequence(0, 1)
    with pytest.raises(ValueError):
        cross_sequence(1, 0)


# ---------------------------------------------------------------------------
# Workload A (single-packet flows)
# ---------------------------------------------------------------------------

def test_single_packet_flows_structure():
    workload = single_packet_flows(mbps(50), n_flows=100)
    assert workload.n_packets == 100
    assert workload.n_flows == 100
    assert all(spec.n_packets == 1 for spec in workload.flows.values())


def test_single_packet_flows_all_sources_distinct():
    workload = single_packet_flows(mbps(50), n_flows=300)
    sources = {p.ip.src_ip for _, p in workload.entries}
    assert len(sources) == 300


def test_single_packet_flows_frame_size():
    workload = single_packet_flows(mbps(50), n_flows=10, frame_len=1000)
    assert all(p.wire_len == 1000 for _, p in workload.entries)
    assert workload.total_bytes == 10_000


def test_single_packet_flows_five_tuples_match_specs():
    workload = single_packet_flows(mbps(50), n_flows=20)
    for _, packet in workload.entries:
        spec = workload.flows[packet.flow_id]
        assert packet.five_tuple == spec.five_tuple


# ---------------------------------------------------------------------------
# Workload B (batched flows)
# ---------------------------------------------------------------------------

def test_batched_flows_structure():
    workload = batched_multi_packet_flows(mbps(50), n_flows=10,
                                          packets_per_flow=4, batch_size=5)
    assert workload.n_flows == 10
    assert workload.n_packets == 40
    assert all(spec.n_packets == 4 for spec in workload.flows.values())


def test_batched_flows_cross_sequencing_within_batch():
    workload = batched_multi_packet_flows(mbps(50), n_flows=5,
                                          packets_per_flow=3, batch_size=5,
                                          rng=None, jitter_fraction=0.0)
    first_five = [p.flow_id for _, p in workload.entries[:5]]
    assert first_five == [0, 1, 2, 3, 4]
    seqs = [p.seq_in_flow for _, p in workload.entries]
    assert seqs == [0] * 5 + [1] * 5 + [2] * 5


def test_batched_flows_batch_gap_separates_batches():
    gap = 0.5
    workload = batched_multi_packet_flows(mbps(100), n_flows=10,
                                          packets_per_flow=2, batch_size=5,
                                          batch_gap=gap)
    batch1_end = max(t for t, p in workload.entries if p.flow_id < 5)
    batch2_start = min(t for t, p in workload.entries if p.flow_id >= 5)
    assert batch2_start - batch1_end >= gap * 0.99


def test_batched_flows_entries_sorted():
    rng = RandomStreams(3)
    workload = batched_multi_packet_flows(mbps(95), rng=rng)
    times = [t for t, _ in workload.entries]
    assert times == sorted(times)


def test_batched_flows_validation():
    with pytest.raises(ValueError):
        batched_multi_packet_flows(mbps(50), n_flows=7, batch_size=5)


@given(st.integers(1, 4), st.integers(1, 6))
def test_batched_flows_packet_accounting(batches, packets_per_flow):
    workload = batched_multi_packet_flows(mbps(50), n_flows=batches * 5,
                                          packets_per_flow=packets_per_flow)
    assert workload.n_packets == batches * 5 * packets_per_flow
    per_flow = {}
    for _, packet in workload.entries:
        per_flow[packet.flow_id] = per_flow.get(packet.flow_id, 0) + 1
    assert all(count == packets_per_flow for count in per_flow.values())


# ---------------------------------------------------------------------------
# PacketGenerator
# ---------------------------------------------------------------------------

def _wired_host(sim):
    host = Host(sim, "h", "00:00:00:00:00:01", "10.0.0.1")
    link = Link(sim, "l", mbps(100))
    sent = []
    link.connect(sent.append)
    host.attach(link)
    return host, sent


def test_pktgen_replays_whole_workload(sim):
    host, sent = _wired_host(sim)
    workload = single_packet_flows(mbps(100), n_flows=25)
    generator = PacketGenerator(sim, host, workload)
    generator.start()
    sim.run()
    assert generator.finished
    assert len(sent) == 25


def test_pktgen_fresh_packets_per_run():
    """Stamps from one repetition must not leak into the next."""
    workload = single_packet_flows(mbps(100), n_flows=5)
    for _ in range(2):
        sim = Simulator()
        host, sent = _wired_host(sim)
        generator = PacketGenerator(sim, host, workload)
        generator.start()
        sim.run()
        assert all(p.created_at is not None for p in sent)
        assert all(p.switch_in_at is None for p in sent)
    # The template packets themselves were never stamped.
    assert all(p.created_at is None for _, p in workload.entries)


def test_pktgen_start_offset(sim):
    host, sent = _wired_host(sim)
    workload = single_packet_flows(mbps(100), n_flows=1)
    PacketGenerator(sim, host, workload).start(at=0.5)
    sim.run()
    assert sent[0].created_at == pytest.approx(0.5)


def test_pktgen_stop_cancels_remaining(sim):
    host, sent = _wired_host(sim)
    workload = single_packet_flows(mbps(100), n_flows=100)
    generator = PacketGenerator(sim, host, workload)
    generator.start()
    sim.schedule(workload.duration / 2, generator.stop)
    sim.run()
    assert 0 < generator.packets_sent < 100
    assert not generator.finished
