"""Tests for proactive rule provisioning (the zero-packet_in baseline)."""

from __future__ import annotations

import pytest

from repro.controllersim import (ProactiveProvisioner, ProactiveRoute,
                                 destination_routes)
from repro.core import buffer_256
from repro.experiments import build_testbed
from repro.openflow import Match
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import HOST1_IP, HOST2_IP, single_packet_flows


def _proactive_testbed(n_flows=20, rate=50, seed=40):
    workload = single_packet_flows(mbps(rate), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    testbed = build_testbed(buffer_256(), workload, seed=seed)
    routes = destination_routes(1, {HOST1_IP: 1, HOST2_IP: 2})
    provisioner = ProactiveProvisioner(testbed.controller, routes)
    provisioner.provision()
    testbed.sim.run(until=0.01)      # rules land before traffic
    testbed.pktgen.start(at=0.0)
    testbed.sim.run(until=2.0)
    return testbed, provisioner


def test_destination_routes_structure():
    routes = destination_routes(3, {"10.0.0.2": 2, "10.0.0.1": 1})
    assert len(routes) == 2
    assert all(r.datapath_id == 3 for r in routes)
    assert routes[0].match == Match(ip_dst="10.0.0.1")
    flow_mod = routes[0].to_flow_mod()
    assert flow_mod.idle_timeout == 0.0      # permanent rule


def test_proactive_rules_eliminate_packet_ins():
    testbed, provisioner = _proactive_testbed()
    assert provisioner.rules_pushed == 2
    assert testbed.switch.agent.packet_ins_sent == 0
    assert len(testbed.host2.received) == 20
    testbed.shutdown()


def test_proactive_control_traffic_is_constant():
    small, _ = _proactive_testbed(n_flows=5, seed=41)
    large, _ = _proactive_testbed(n_flows=50, seed=42)
    # Control bytes do not grow with flow count (only the 2 flow_mods).
    assert (large.metrics.capture_down.bytes_total
            == small.metrics.capture_down.bytes_total)
    small.shutdown()
    large.shutdown()


def test_proactive_gives_up_per_flow_counters():
    testbed, _ = _proactive_testbed()
    entries = testbed.switch.flow_table.entries()
    assert len(entries) == 2                 # coarse rules only
    to_host2 = next(e for e in entries if e.match.ip_dst == HOST2_IP)
    assert to_host2.packet_count == 20       # every flow lumped together
    testbed.shutdown()


def test_unknown_datapath_rejected():
    workload = single_packet_flows(mbps(10), n_flows=1,
                                   rng=RandomStreams(43))
    testbed = build_testbed(buffer_256(), workload, seed=43)
    provisioner = ProactiveProvisioner(
        testbed.controller, [ProactiveRoute(99, Match(), 1)])
    with pytest.raises(KeyError):
        provisioner.provision()
    testbed.shutdown()
