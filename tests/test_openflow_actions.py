"""Tests for actions and protocol constants."""

from __future__ import annotations

import pytest

from repro.openflow import (ControllerAction, DropAction, ErrorType,
                            FlowModCommand, OutputAction, PacketInReason,
                            PortNo, actions_wire_len, OFP_NO_BUFFER)


def test_output_action_wire_len():
    assert OutputAction(2).wire_len == 8
    assert actions_wire_len((OutputAction(1), OutputAction(2))) == 16


def test_output_action_validation():
    with pytest.raises(ValueError):
        OutputAction(-1)


def test_output_action_renders_reserved_ports():
    assert str(OutputAction(int(PortNo.FLOOD))) == "output:FLOOD"
    assert str(OutputAction(7)) == "output:7"


def test_drop_action_is_zero_bytes():
    assert DropAction().wire_len == 0
    assert actions_wire_len((DropAction(),)) == 0
    assert str(DropAction()) == "drop"


def test_controller_action():
    action = ControllerAction(max_len=64)
    assert action.wire_len == 8
    assert "max_len=64" in str(action)
    with pytest.raises(ValueError):
        ControllerAction(max_len=-1)


def test_actions_are_hashable_and_comparable():
    assert OutputAction(2) == OutputAction(2)
    assert OutputAction(2) != OutputAction(3)
    assert len({OutputAction(2), OutputAction(2), DropAction()}) == 2


def test_no_buffer_sentinel_is_spec_value():
    assert OFP_NO_BUFFER == 0xFFFFFFFF


def test_enum_values_match_spec():
    assert PacketInReason.NO_MATCH == 0
    assert PacketInReason.ACTION == 1
    assert FlowModCommand.ADD == 0
    assert FlowModCommand.DELETE == 3
    assert FlowModCommand.DELETE_STRICT == 4
    assert PortNo.FLOOD == 0xFFFB
    assert PortNo.CONTROLLER == 0xFFFD
    assert ErrorType.BUFFER_UNKNOWN.value == 5
