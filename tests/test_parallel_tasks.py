"""Tests for sweep sharding: tasks, deterministic seeding, fingerprints."""

from __future__ import annotations

import functools

import pytest

from repro.core import buffer_256
from repro.experiments import derive_seed, run_once, workload_a_factory
from repro.parallel import SweepJob, execute_task, register_jobs
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


# ---------------------------------------------------------------------------
# derive_seed: the determinism invariant
# ---------------------------------------------------------------------------

def test_derive_seed_is_pure():
    assert derive_seed(3, 50, 7) == derive_seed(3, 50, 7)


def test_derive_seed_matches_legacy_formula():
    # The formula the serial runner always used; changing it silently
    # would invalidate every recorded figure and the result cache.
    assert derive_seed(2, 35, 4) == 2 * 100_003 + 35 * 1_009 + 4


def test_derive_seed_unique_across_small_grid():
    seeds = {derive_seed(1, rate, rep)
             for rate in range(5, 101, 5) for rep in range(20)}
    assert len(seeds) == 20 * 20


# ---------------------------------------------------------------------------
# SweepJob sharding
# ---------------------------------------------------------------------------

def test_job_tasks_enumerate_grid_in_canonical_order():
    job = SweepJob(config=buffer_256(), factory=workload_a_factory(10),
                   rates_mbps=(20, 80), repetitions=3, base_seed=5)
    register_jobs([job])
    tasks = job.tasks()
    assert [(t.rate_index, t.rate_mbps, t.rep) for t in tasks] == [
        (0, 20, 0), (0, 20, 1), (0, 20, 2),
        (1, 80, 0), (1, 80, 1), (1, 80, 2)]
    assert all(t.seed == derive_seed(5, t.rate_mbps, t.rep) for t in tasks)
    assert all(t.job_id == job.job_id for t in tasks)


def test_job_rejects_zero_repetitions():
    with pytest.raises(ValueError):
        SweepJob(config=buffer_256(), factory=workload_a_factory(10),
                 rates_mbps=(20,), repetitions=0)


def test_unregistered_job_cannot_shard():
    job = SweepJob(config=buffer_256(), factory=workload_a_factory(10),
                   rates_mbps=(20,), repetitions=1)
    with pytest.raises(ValueError):
        job.tasks()


def test_execute_task_matches_direct_run_once():
    job = SweepJob(config=buffer_256(), factory=workload_a_factory(15),
                   rates_mbps=(20,), repetitions=1, base_seed=2)
    register_jobs([job])
    task = job.tasks()[0]
    via_task = execute_task(task)
    rng = RandomStreams(task.seed)
    direct = run_once(
        buffer_256(),
        single_packet_flows(mbps(20), n_flows=15, frame_len=1000, rng=rng),
        seed=task.seed)
    assert via_task.control_load_up_mbps == direct.control_load_up_mbps
    assert via_task.setup_delays == direct.setup_delays


# ---------------------------------------------------------------------------
# factory fingerprints (cache identity)
# ---------------------------------------------------------------------------

def test_fingerprint_stable_for_equal_parameters():
    from repro.parallel import factory_fingerprint
    a = factory_fingerprint(workload_a_factory(n_flows=300))
    b = factory_fingerprint(workload_a_factory(n_flows=300))
    assert a == b


def test_fingerprint_differs_with_closure_values():
    from repro.parallel import factory_fingerprint
    assert (factory_fingerprint(workload_a_factory(n_flows=300))
            != factory_fingerprint(workload_a_factory(n_flows=1000)))


def test_fingerprint_handles_partial():
    from repro.parallel import factory_fingerprint

    def base(rate_bps, rng, n_flows):
        return single_packet_flows(rate_bps, n_flows=n_flows, rng=rng)

    ten = factory_fingerprint(functools.partial(base, n_flows=10))
    twenty = factory_fingerprint(functools.partial(base, n_flows=20))
    assert ten != twenty
    assert ten == factory_fingerprint(functools.partial(base, n_flows=10))


def test_fingerprint_differs_between_factories():
    from repro.experiments import workload_b_factory
    from repro.parallel import factory_fingerprint
    assert (factory_fingerprint(workload_a_factory(50))
            != factory_fingerprint(workload_b_factory(50)))
