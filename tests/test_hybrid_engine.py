"""The hybrid execution engine: spec seam, equivalence, conservation.

Three layers of guarantees tie the hybrid engine to the packet engine:

1. **Bit-identity** where the fluid model never engages: on
   single-packet-flow workloads every packet is a flow's first — i.e.
   pure miss path — so hybrid and packet runs must produce *identical*
   metrics, on the single-switch testbed and on a line.
2. **Bounded deviation** where it does engage: on packet-train
   workloads the analytically advanced delays must stay within
   :data:`repro.engine.HYBRID_DELAY_TOLERANCE` of the packet engine.
3. **Conservation**: every flow the workload opens is either completed
   or abandoned, never silently lost — property-tested across
   mechanisms, rates and train shapes.

Plus the seam itself: engine specs are parsed, named, hashed and cached
distinctly, so the two engines can never poison each other's results.
"""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analytic import (QueueUnstableError, mm1_sojourn,
                            mm1_sojourn_quantile,
                            packet_in_sojourn_estimate)
from repro.core import buffer_256, flow_buffer_256, no_buffer
from repro.engine import (HYBRID, HYBRID_DELAY_TOLERANCE, PACKET,
                          EngineSpec, parse_engine)
from repro.experiments import default_calibration, run_once
from repro.experiments import workload_a_factory
from repro.parallel import SweepJob, register_jobs, task_key
from repro.scenarios import SINGLE, line_scenario, single_scenario
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import (flow_train_flows, single_packet_flows,
                              tcp_eviction_scenario)

HYBRID_SINGLE = SINGLE.with_engine(HYBRID)


# ---------------------------------------------------------------------------
# The seam: spec parsing, naming, cache keying
# ---------------------------------------------------------------------------

def test_engine_spec_defaults_and_parse():
    assert PACKET.mode == "packet" and not PACKET.is_hybrid
    assert HYBRID.mode == "hybrid" and HYBRID.is_hybrid
    assert parse_engine("packet") == PACKET
    assert parse_engine(" HYBRID ") == HYBRID
    assert parse_engine("hybrid:0.2") == EngineSpec("hybrid",
                                                    burst_gap=0.2)
    assert parse_engine("hybrid:0.2").name == "hybrid:0.2"
    assert HYBRID.with_burst_gap(1.5).burst_gap == 1.5


@pytest.mark.parametrize("text", ["fluid", "packet:0.2", "hybrid:zero",
                                  "hybrid:-1"])
def test_engine_spec_rejects_bad_text(text):
    with pytest.raises(ValueError):
        parse_engine(text)


def test_scenario_name_carries_engine():
    assert SINGLE.name == "single"
    assert HYBRID_SINGLE.name == "single+engine=hybrid"
    assert (line_scenario(3).with_engine(HYBRID.with_burst_gap(0.5)).name
            == "line:3+engine=hybrid:0.5")


def test_engine_feeds_cache_tokens_and_task_keys():
    """Packet and hybrid runs of the same grid point never collide."""
    assert SINGLE.cache_token() != HYBRID_SINGLE.cache_token()
    assert (HYBRID_SINGLE.cache_token()
            != SINGLE.with_engine(HYBRID.with_burst_gap(0.3)).cache_token())

    def key(scenario):
        job = SweepJob(config=flow_buffer_256(),
                       factory=workload_a_factory(n_flows=12),
                       rates_mbps=(40,), repetitions=1, base_seed=7,
                       scenario=scenario)
        register_jobs([job])
        return task_key(job, job.tasks()[0])

    assert key(SINGLE) != key(HYBRID_SINGLE)


# ---------------------------------------------------------------------------
# Bit-identity on pure miss-path workloads
# ---------------------------------------------------------------------------

def _run_pair(scenario, n_flows=40, rate=40, seed=11):
    """The same workload through both engines on ``scenario``."""
    results = []
    for spec in (scenario, scenario.with_engine(HYBRID)):
        workload = single_packet_flows(mbps(rate), n_flows=n_flows,
                                       rng=RandomStreams(seed))
        results.append(run_once(flow_buffer_256(), workload, seed=seed,
                                scenario=spec))
    return results


@pytest.mark.parametrize("scenario", [single_scenario(), line_scenario(2)],
                         ids=["single", "line:2"])
def test_hybrid_bit_identical_on_single_packet_flows(scenario):
    """Every packet is a flow's first -> pure miss path -> identical."""
    packet, hybrid = _run_pair(scenario)
    assert hybrid.completed_flows == packet.completed_flows == 40
    assert hybrid.setup_delays == packet.setup_delays
    assert hybrid.forwarding_delays == packet.forwarding_delays
    assert hybrid.controller_delays == packet.controller_delays
    assert hybrid.packet_in_count == packet.packet_in_count
    assert hybrid.flow_mod_count == packet.flow_mod_count
    assert hybrid.control_load_up_mbps == packet.control_load_up_mbps
    assert hybrid.control_load_down_mbps == packet.control_load_down_mbps


# ---------------------------------------------------------------------------
# Bounded deviation on aggregated packet trains
# ---------------------------------------------------------------------------

def _train_metrics(engine, seed=13):
    workload = flow_train_flows(mbps(4), n_flows=50, packets_per_flow=16,
                                flow_rate=500.0)
    if not engine.is_hybrid:
        workload = workload.materialize()
    return run_once(flow_buffer_256(), workload, seed=seed,
                    scenario=SINGLE.with_engine(engine))


def test_hybrid_train_delays_within_tolerance():
    packet = _train_metrics(PACKET)
    hybrid = _train_metrics(HYBRID)
    assert hybrid.completed_flows == hybrid.total_flows == 50
    assert packet.completed_flows == packet.total_flows == 50
    # One packet_in per flow on both engines: aggregation never invents
    # or suppresses misses.
    assert hybrid.packet_in_count == packet.packet_in_count
    for attr in ("setup_delays", "forwarding_delays"):
        reference = statistics.mean(getattr(packet, attr))
        measured = statistics.mean(getattr(hybrid, attr))
        deviation = abs(measured - reference) / reference
        assert deviation <= HYBRID_DELAY_TOLERANCE, (
            f"{attr}: hybrid {measured:.6f}s vs packet "
            f"{reference:.6f}s ({deviation:.1%})")


def test_hybrid_tcp_eviction_re_misses_after_idle_gap():
    """A gap past the rule's idle timeout re-enters the discrete path.

    §VI.B: the flow goes idle long enough for the switch to evict its
    rule, then bursts on the still-open connection.  The hybrid engine
    must split the aggregate at the gap so the post-gap packet is a real
    discrete packet that re-misses — same packet_in count as the packet
    engine, not one miss and a fluid glide over the eviction.
    """
    calibration = default_calibration()
    gap = calibration.controller.flow_idle_timeout + 1.0
    counts = {}
    for spec in (SINGLE, HYBRID_SINGLE):
        workload = tcp_eviction_scenario(mbps(4), initial_packets=6,
                                         idle_gap=gap, burst_packets=20)
        metrics = run_once(buffer_256(), workload, seed=17,
                           scenario=spec, calibration=calibration)
        counts[spec.engine.mode] = metrics.packet_in_count
    assert counts["hybrid"] >= 2          # the burst really re-missed
    assert counts["hybrid"] == counts["packet"]


# ---------------------------------------------------------------------------
# Conservation property (satellite: hypothesis)
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=st.sampled_from([no_buffer(), buffer_256(),
                               flow_buffer_256()]),
       n_flows=st.integers(min_value=1, max_value=60),
       packets_per_flow=st.integers(min_value=1, max_value=20),
       flow_rate=st.sampled_from([200.0, 500.0, 1000.0]),
       seed=st.integers(min_value=0, max_value=1000))
def test_hybrid_flow_conservation_property(config, n_flows,
                                           packets_per_flow, flow_rate,
                                           seed):
    """Every flow ends exactly one way: completed or abandoned.

    Random mechanism x train shape x arrival rate x seed: the hybrid
    engine's split between discrete firsts and analytic tails must
    never lose (or double-complete) a flow.
    """
    workload = flow_train_flows(mbps(4), n_flows=n_flows,
                                packets_per_flow=packets_per_flow,
                                flow_rate=flow_rate)
    metrics = run_once(config, workload, seed=seed,
                       scenario=HYBRID_SINGLE)
    assert metrics.total_flows == n_flows
    assert (metrics.completed_flows + metrics.flows_abandoned
            == metrics.total_flows)
    assert len(metrics.setup_delays) == metrics.completed_flows


# ---------------------------------------------------------------------------
# M/M/1 instability boundary (satellite: analytic hardening)
# ---------------------------------------------------------------------------

def test_mm1_sojourn_unstable_region_defaults_to_inf():
    assert math.isinf(mm1_sojourn(100.0, 100.0))       # exactly rho = 1
    assert math.isinf(mm1_sojourn(150.0, 100.0))       # past saturation
    assert math.isinf(mm1_sojourn_quantile(100.0, 100.0, 0.99))


def test_mm1_sojourn_strict_raises_with_diagnostics():
    with pytest.raises(QueueUnstableError) as excinfo:
        mm1_sojourn(150.0, 100.0, strict=True)
    err = excinfo.value
    assert isinstance(err, ValueError)                 # catchable as before
    assert err.arrival_rate == 150.0
    assert err.service_rate == 100.0
    assert err.utilization == pytest.approx(1.5)
    with pytest.raises(QueueUnstableError):
        mm1_sojourn_quantile(100.0, 100.0, 0.5, strict=True)


def test_mm1_sojourn_finite_just_below_boundary():
    near = mm1_sojourn(100.0 - 1e-6, 100.0)
    assert math.isfinite(near) and near > 1e4          # huge but finite
    assert mm1_sojourn(50.0, 100.0) == pytest.approx(0.02)


def test_packet_in_sojourn_estimate_strict_at_saturation():
    calibration = default_calibration()
    # Far past any real controller's knee: 10^6 Mbps of 64-byte firsts.
    assert math.isinf(packet_in_sojourn_estimate(1e6, calibration,
                                                 frame_len=64))
    with pytest.raises(QueueUnstableError):
        packet_in_sojourn_estimate(1e6, calibration, frame_len=64,
                                   strict=True)
