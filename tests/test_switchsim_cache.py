"""Tests for the microflow cache (two-tier datapath lookup)."""

from __future__ import annotations

import pytest

from repro.controllersim import ControllerConfig
from repro.core import buffer_256
from repro.experiments import TestbedCalibration, build_testbed
from repro.openflow import FlowEntry, FlowTable, Match, OutputAction
from repro.simkit import RandomStreams, mbps
from repro.switchsim import MicroflowCache, SwitchConfig
from repro.trafficgen import recurring_flows
from repro.packets import udp_packet


def _packet(i=0):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.0.{i + 1}", "10.0.0.2", 1000 + i, 2000)


def _entry(packet, in_port=1, **kwargs):
    return FlowEntry(match=Match.exact_from_packet(packet, in_port=in_port),
                     actions=(OutputAction(2),), **kwargs)


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------

def test_disabled_cache_always_misses():
    cache = MicroflowCache(0)
    assert not cache.enabled
    assert cache.lookup(_packet(), 1, generation=0, now=0.0) is None
    cache.store(_packet(), 1, generation=0, entry=_entry(_packet()))
    assert len(cache) == 0


def test_cache_hit_after_store():
    cache = MicroflowCache(16)
    packet = _packet()
    entry = _entry(packet)
    assert cache.lookup(packet, 1, 0, 0.0) is None
    cache.store(packet, 1, 0, entry)
    assert cache.lookup(packet, 1, 0, 1.0) is entry
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_generation_change_invalidates():
    cache = MicroflowCache(16)
    packet = _packet()
    cache.store(packet, 1, generation=5, entry=_entry(packet))
    assert cache.lookup(packet, 1, generation=6, now=0.0) is None
    assert cache.invalidations == 1
    assert len(cache) == 0


def test_expired_entry_invalidates():
    cache = MicroflowCache(16)
    packet = _packet()
    entry = _entry(packet, idle_timeout=1.0)
    entry.last_used = 0.0
    cache.store(packet, 1, 0, entry)
    assert cache.lookup(packet, 1, 0, now=5.0) is None


def test_capacity_bound():
    cache = MicroflowCache(4)
    for i in range(10):
        cache.store(_packet(i), 1, 0, _entry(_packet(i)))
    assert len(cache) <= 4


def test_restore_of_resident_key_evicts_nothing():
    """Bugfix regression: re-storing a key that is already cached at full
    capacity must refresh that key in place, not evict an unrelated
    resident flow (the old code evicted whenever len >= capacity)."""
    cache = MicroflowCache(3)
    packets = [_packet(i) for i in range(3)]
    for packet in packets:
        cache.store(packet, 1, 0, _entry(packet))
    assert len(cache) == 3
    # Overwrite a resident key (e.g. after a generation bump re-lookup).
    refreshed = _entry(packets[1])
    cache.store(packets[1], 1, generation=1, entry=refreshed)
    assert len(cache) == 3
    # Every original key is still resident; nothing was evicted.
    assert cache.lookup(packets[0], 1, 0, now=0.0) is not None
    assert cache.lookup(packets[1], 1, 1, now=0.0) is refreshed
    assert cache.lookup(packets[2], 1, 0, now=0.0) is not None
    # A genuinely new key at capacity still evicts exactly one entry.
    cache.store(_packet(7), 1, 0, _entry(_packet(7)))
    assert len(cache) == 3


def test_validation():
    with pytest.raises(ValueError):
        MicroflowCache(-1)
    with pytest.raises(ValueError):
        SwitchConfig(microflow_cache_capacity=-1)


def test_flow_table_generation_bumps_on_mutations():
    table = FlowTable(capacity=8)
    packet = _packet()
    g0 = table.generation
    table.insert(_entry(packet), now=0.0)
    g1 = table.generation
    assert g1 > g0
    table.remove(Match(ip_dst="10.0.0.2"), now=0.0)
    assert table.generation > g1
    g2 = table.generation
    table.remove(Match(ip_src="1.2.3.4"), now=0.0)   # removes nothing
    assert table.generation == g2


# ---------------------------------------------------------------------------
# End to end
# ---------------------------------------------------------------------------

def _cached_calibration(capacity=1024):
    return TestbedCalibration(
        switch=SwitchConfig(microflow_cache_capacity=capacity),
        controller=ControllerConfig())


def test_repeat_traffic_hits_the_cache():
    workload = recurring_flows(mbps(20), n_flows=4, rounds=6)
    testbed = build_testbed(buffer_256(), workload,
                            calibration=_cached_calibration(), seed=95)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=2.0)
    cache = testbed.switch.datapath.cache
    # Round 1 misses everywhere; round 2 misses the cache (rules were
    # installed after the probe) but hits the table and populates the
    # cache; rounds 3-6 hit the cache.
    assert cache.hits >= 4 * 3
    assert len(testbed.host2.received) == 24
    # The table's own lookup counter stops growing once the cache serves.
    assert testbed.switch.flow_table.lookups < 24
    testbed.shutdown()


def test_cache_reduces_datapath_cpu():
    def run(capacity):
        workload = recurring_flows(mbps(50), n_flows=5, rounds=40)
        testbed = build_testbed(buffer_256(), workload,
                                calibration=_cached_calibration(capacity),
                                seed=96)
        testbed.controller.start_handshake()
        testbed.pktgen.start(at=0.02)
        testbed.sim.run(until=2.0)
        busy = testbed.switch.cpu.station.busy_time
        delivered = len(testbed.host2.received)
        testbed.shutdown()
        return busy, delivered

    busy_cached, delivered_cached = run(1024)
    busy_plain, delivered_plain = run(0)
    assert delivered_cached == delivered_plain == 200
    assert busy_cached < 0.85 * busy_plain


def test_rule_deletion_never_leaves_stale_fast_path():
    """After the rule is deleted, cached decisions must not forward."""
    from repro.openflow import FlowMod, FlowModCommand
    workload = recurring_flows(mbps(20), n_flows=1, rounds=3)
    testbed = build_testbed(buffer_256(), workload,
                            calibration=_cached_calibration(), seed=97)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    assert len(testbed.host2.received) == 3
    # Delete everything; the cached decision must be invalidated.
    testbed.channel.send_to_switch(FlowMod(match=Match(),
                                           command=FlowModCommand.DELETE))
    testbed.sim.run(until=1.5)
    packet_ins_before = testbed.switch.agent.packet_ins_sent
    replay = recurring_flows(mbps(20), n_flows=1, rounds=1)
    from repro.trafficgen import PacketGenerator
    PacketGenerator(testbed.sim, testbed.host1, replay).start()
    testbed.sim.run(until=2.5)
    # The packet went back through the miss path (a new packet_in).
    assert testbed.switch.agent.packet_ins_sent == packet_ins_before + 1
    assert len(testbed.host2.received) == 4
    testbed.shutdown()
