"""Tests for the periodic flow-statistics poller."""

from __future__ import annotations

import pytest

from repro.controllersim import StatsPoller
from repro.core import buffer_256
from repro.experiments import build_testbed
from repro.openflow import Match
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import recurring_flows, single_packet_flows


def _polling_testbed(n_flows=6, period=0.2, workload=None, seed=30):
    if workload is None:
        workload = single_packet_flows(mbps(20), n_flows=n_flows,
                                       rng=RandomStreams(seed))
    testbed = build_testbed(buffer_256(), workload, seed=seed)
    poller = StatsPoller(testbed.sim, testbed.controller, period=period)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    poller.start()
    return testbed, poller


def test_poller_collects_rule_counts():
    testbed, poller = _polling_testbed(n_flows=6, period=0.2)
    testbed.sim.run(until=1.0)
    series = poller.rule_counts[1]
    assert len(series) >= 3
    # All six rules are installed well before the second poll.
    assert series.values[-1] == 6.0
    assert poller.timeouts == 0
    poller.stop()
    testbed.shutdown()


def test_poller_tracks_hit_counters():
    workload = recurring_flows(mbps(10), n_flows=3, rounds=5)
    testbed, poller = _polling_testbed(period=0.5, workload=workload,
                                       seed=31)
    testbed.sim.run(until=3.0)
    # Rounds 2-5 hit: 4 hits x 3 flows = 12 packets through rules.
    assert poller.packet_counts[1].last() == 12.0
    assert poller.byte_counts[1].last() == 12_000.0
    poller.stop()
    testbed.shutdown()


def test_poller_counts_timeouts_with_dead_switch():
    testbed, poller = _polling_testbed(period=0.2)
    # Sever the switch side: stats requests vanish into the void.
    testbed.channel.bind_switch(lambda message: None)
    testbed.sim.run(until=3.0)   # each cycle: 0.2s sleep + 0.5s timeout
    assert poller.timeouts >= 3
    assert poller.latest_rule_count(1) is None
    poller.stop()
    testbed.shutdown()


def test_poller_stop_halts_polling():
    testbed, poller = _polling_testbed(period=0.2)
    testbed.sim.run(until=0.5)
    polls_at_stop = poller.polls
    poller.stop()
    testbed.sim.run(until=2.0)
    assert poller.polls <= polls_at_stop + 1
    testbed.shutdown()


def test_poller_match_filter():
    testbed, poller = _polling_testbed(n_flows=6, period=0.2)
    poller.match = Match(ip_src="10.1.0.0")      # flow 0's forged source
    testbed.sim.run(until=1.0)
    assert poller.rule_counts[1].last() == 1.0
    poller.stop()
    testbed.shutdown()


def test_poller_validation():
    testbed, poller = _polling_testbed()
    with pytest.raises(RuntimeError):
        poller.start()          # double start
    with pytest.raises(ValueError):
        StatsPoller(testbed.sim, testbed.controller, period=0)
    with pytest.raises(ValueError):
        StatsPoller(testbed.sim, testbed.controller, reply_timeout=0)
    poller.stop()
    testbed.shutdown()


def test_poller_optionally_polls_port_stats():
    workload = single_packet_flows(mbps(20), n_flows=4,
                                   rng=RandomStreams(32))
    testbed = build_testbed(buffer_256(), workload, seed=32)
    poller = StatsPoller(testbed.sim, testbed.controller, period=0.3,
                         poll_ports=True)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    poller.start()
    testbed.sim.run(until=1.5)
    series = poller.port_tx_bytes[1]
    assert len(series) >= 2
    # All four 1000-byte frames eventually left via port 2.
    assert series.last() >= 4 * 1000
    poller.stop()
    testbed.shutdown()
