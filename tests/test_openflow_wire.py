"""Round-trip tests for the OpenFlow 1.0 wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.openflow import (BarrierReply, BarrierRequest, EchoReply,
                            EchoRequest, ErrorMsg, ErrorType, FeaturesReply,
                            FeaturesRequest, FlowMod, FlowModCommand,
                            FlowRemoved, GetConfigReply, GetConfigRequest,
                            Hello, Match, OutputAction, PacketIn, PacketOut,
                            SetConfig, WireError, OFP_NO_BUFFER,
                            decode_match, decode_message, encode_match,
                            encode_message)
from repro.packets import udp_packet


def _packet(frame_len=1000):
    return udp_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                      "10.0.0.1", "10.0.0.2", 1234, 80,
                      frame_len=frame_len)


_SIMPLE = [Hello(), EchoRequest(payload_len=16), EchoReply(payload_len=4),
           FeaturesRequest(), GetConfigRequest(), BarrierRequest(),
           BarrierReply(), SetConfig(miss_send_len=200, flags=1),
           GetConfigReply(miss_send_len=128)]


@pytest.mark.parametrize("message", _SIMPLE,
                         ids=[type(m).__name__ for m in _SIMPLE])
def test_simple_messages_round_trip(message):
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert type(decoded) is type(message)
    assert decoded.xid == message.xid


def test_set_config_fields_survive():
    decoded = decode_message(encode_message(
        SetConfig(miss_send_len=77, flags=3)))
    assert decoded.miss_send_len == 77
    assert decoded.flags == 3


def test_features_reply_round_trip():
    message = FeaturesReply(datapath_id=42, n_buffers=256, n_tables=1,
                            ports=(1, 2, 7))
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert decoded.datapath_id == 42
    assert decoded.n_buffers == 256
    assert decoded.ports == (1, 2, 7)


def test_packet_in_round_trip_reconstructs_packet():
    packet = _packet()
    message = PacketIn(packet=packet, in_port=3, buffer_id=99,
                       data_len=128)
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert decoded.buffer_id == 99
    assert decoded.in_port == 3
    assert decoded.data_len == 128
    # The reconstructed packet has the original headers AND the original
    # full frame size (from the embedded IP total_length).
    assert decoded.packet.five_tuple == packet.five_tuple
    assert decoded.packet.wire_len == packet.wire_len


def test_packet_out_buffered_round_trip():
    message = PacketOut(actions=(OutputAction(2),), buffer_id=7, in_port=1)
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert decoded.buffer_id == 7
    assert decoded.actions == (OutputAction(2),)
    assert decoded.packet is None


def test_packet_out_unbuffered_carries_frame():
    packet = _packet(500)
    message = PacketOut(actions=(OutputAction(2),),
                        buffer_id=OFP_NO_BUFFER,
                        data_len=packet.wire_len, packet=packet)
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert decoded.packet.five_tuple == packet.five_tuple
    assert decoded.data_len == 500


def test_flow_mod_round_trip():
    packet = _packet()
    message = FlowMod(match=Match.exact_from_packet(packet, in_port=1),
                      actions=(OutputAction(2),),
                      command=FlowModCommand.ADD, priority=0x8000,
                      idle_timeout=5.0, hard_timeout=30.0, cookie=1234,
                      send_flow_removed=True)
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert decoded.match == message.match
    assert decoded.actions == message.actions
    assert decoded.idle_timeout == 5.0
    assert decoded.hard_timeout == 30.0
    assert decoded.cookie == 1234
    assert decoded.send_flow_removed


def test_flow_removed_round_trip():
    message = FlowRemoved(match=Match(ip_dst="10.0.0.2"), cookie=5,
                          priority=10, reason=1, duration=12.25,
                          packet_count=1000, byte_count=1_000_000)
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert decoded.match == message.match
    assert decoded.duration == pytest.approx(12.25)
    assert decoded.packet_count == 1000
    assert decoded.reason == 1


def test_error_round_trip():
    message = ErrorMsg(error_type=ErrorType.BUFFER_UNKNOWN, code=2,
                       context_len=32)
    wire = encode_message(message)
    assert len(wire) == message.wire_len
    decoded = decode_message(wire)
    assert decoded.error_type == ErrorType.BUFFER_UNKNOWN
    assert decoded.code == 2


def test_decode_rejects_garbage():
    with pytest.raises(WireError):
        decode_message(b"\x01\x00")                 # short header
    with pytest.raises(WireError):
        decode_message(b"\x04\x00\x00\x08" + b"\x00" * 4)   # wrong version
    valid = encode_message(Hello())
    with pytest.raises(WireError):
        decode_message(valid[:-1] + b"\x00\x00")    # bad length field
    bad_type = bytearray(valid)
    bad_type[1] = 99
    with pytest.raises(WireError):
        decode_message(bytes(bad_type))


def test_truncated_packet_in_fragment_rejected():
    packet = _packet()
    message = PacketIn(packet=packet, in_port=1, buffer_id=1, data_len=20)
    with pytest.raises(WireError):
        decode_message(encode_message(message))


# ---------------------------------------------------------------------------
# ofp_match properties
# ---------------------------------------------------------------------------

_MATCH_FIELDS = st.fixed_dictionaries({
    "in_port": st.none() | st.integers(0, 0xFFFF),
    "eth_type": st.none() | st.integers(0, 0xFFFF),
    "ip_src": st.none() | st.integers(0, (1 << 32) - 1),
    "ip_dst": st.none() | st.integers(0, (1 << 32) - 1),
    "ip_proto": st.none() | st.integers(0, 255),
    "tp_src": st.none() | st.integers(0, 0xFFFF),
    "tp_dst": st.none() | st.integers(0, 0xFFFF),
})


@given(fields=_MATCH_FIELDS)
def test_match_round_trip_property(fields):
    from repro.packets import int_to_ip
    match = Match(
        in_port=fields["in_port"],
        eth_type=fields["eth_type"],
        ip_src=(int_to_ip(fields["ip_src"])
                if fields["ip_src"] is not None else None),
        ip_dst=(int_to_ip(fields["ip_dst"])
                if fields["ip_dst"] is not None else None),
        ip_proto=fields["ip_proto"],
        tp_src=fields["tp_src"],
        tp_dst=fields["tp_dst"])
    encoded = encode_match(match)
    assert len(encoded) == 40
    assert decode_match(encoded) == match


def test_match_all_round_trip():
    assert decode_match(encode_match(Match())) == Match()


def test_exact_match_round_trip():
    match = Match.exact_from_packet(_packet(), in_port=2)
    assert decode_match(encode_match(match)) == match


@given(payload=st.integers(0, 64))
def test_echo_payload_length_preserved(payload):
    decoded = decode_message(encode_message(
        EchoRequest(payload_len=payload)))
    assert decoded.payload_len == payload
