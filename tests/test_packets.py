"""Tests for packet and header models."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.packets import (ETHERTYPE_IPV4, FLAG_ACK, FLAG_SYN, MIN_FRAME,
                           EthernetHeader, FiveTuple, IPv4Header, Packet,
                           TCPHeader, UDPHeader, flags_to_str, int_to_ip,
                           int_to_mac, ip_to_int, mac_to_int, proto_name,
                           tcp_control_packet, tcp_packet, udp_packet,
                           PROTO_TCP, PROTO_UDP)


# ---------------------------------------------------------------------------
# Address helpers
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_ip_round_trip(value):
    assert ip_to_int(int_to_ip(value)) == value


@given(st.integers(min_value=0, max_value=(1 << 48) - 1))
def test_mac_round_trip(value):
    assert mac_to_int(int_to_mac(value)) == value


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1",
                                 "a.b.c.d", "1.2.3.-4", ""])
def test_malformed_ip_rejected(bad):
    with pytest.raises(ValueError):
        ip_to_int(bad)


@pytest.mark.parametrize("bad", ["00:11:22:33:44", "gg:00:00:00:00:00",
                                 "001122334455", ""])
def test_malformed_mac_rejected(bad):
    with pytest.raises(ValueError):
        mac_to_int(bad)


def test_proto_names():
    assert proto_name(PROTO_UDP) == "udp"
    assert proto_name(PROTO_TCP) == "tcp"
    assert proto_name(137) == "137"


# ---------------------------------------------------------------------------
# Header validation
# ---------------------------------------------------------------------------

def test_ethernet_header_validates_macs():
    with pytest.raises(ValueError):
        EthernetHeader(src_mac="bogus", dst_mac="00:00:00:00:00:01")


def test_ethernet_reversed_swaps_addresses():
    header = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02")
    swapped = header.reversed()
    assert swapped.src_mac == header.dst_mac
    assert swapped.dst_mac == header.src_mac


def test_ipv4_header_validates_fields():
    with pytest.raises(ValueError):
        IPv4Header("10.0.0.1", "10.0.0.2", protocol=300)
    with pytest.raises(ValueError):
        IPv4Header("10.0.0.1", "10.0.0.2", protocol=17, ttl=-1)


def test_ipv4_decremented_ttl():
    header = IPv4Header("1.1.1.1", "2.2.2.2", protocol=17, ttl=64)
    assert header.decremented().ttl == 63
    zero = IPv4Header("1.1.1.1", "2.2.2.2", protocol=17, ttl=0)
    with pytest.raises(ValueError):
        zero.decremented()


def test_udp_header_port_validation():
    with pytest.raises(ValueError):
        UDPHeader(src_port=70000, dst_port=53)
    header = UDPHeader(src_port=1234, dst_port=53)
    assert header.reversed() == UDPHeader(src_port=53, dst_port=1234)


def test_tcp_flags_semantics():
    syn = TCPHeader(1, 2, flags=FLAG_SYN)
    synack = TCPHeader(1, 2, flags=FLAG_SYN | FLAG_ACK)
    assert syn.is_syn and not syn.is_synack
    assert synack.is_synack and not synack.is_syn
    assert flags_to_str(FLAG_SYN | FLAG_ACK) == "S."
    assert flags_to_str(0) == "-"


def test_tcp_validation():
    with pytest.raises(ValueError):
        TCPHeader(1, 2, seq=1 << 32)
    with pytest.raises(ValueError):
        TCPHeader(1, 2, flags=0x1FF)


# ---------------------------------------------------------------------------
# Packet sizes
# ---------------------------------------------------------------------------

def test_udp_packet_wire_length_is_requested_frame_len():
    packet = udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                        "10.0.0.1", "10.0.0.2", 1000, 2000, frame_len=1000)
    assert packet.wire_len == 1000
    assert packet.header_len == 14 + 20 + 8
    assert packet.payload_len == 1000 - 42


def test_minimum_frame_size_enforced():
    packet = tcp_control_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                                "10.0.0.1", "10.0.0.2", 1, 2,
                                flags=FLAG_SYN)
    # 14 + 20 + 20 = 54 bytes of headers, padded to the Ethernet minimum.
    assert packet.header_len == 54
    assert packet.wire_len == MIN_FRAME


def test_frame_smaller_than_headers_rejected():
    with pytest.raises(ValueError):
        udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                   "10.0.0.1", "10.0.0.2", 1, 2, frame_len=30)


def test_leading_bytes_truncation():
    packet = udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                        "10.0.0.1", "10.0.0.2", 1, 2, frame_len=1000)
    assert packet.leading_bytes(128) == 128
    assert packet.leading_bytes(5000) == 1000
    with pytest.raises(ValueError):
        packet.leading_bytes(-1)


def test_packet_uids_are_unique():
    packets = [udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                          "10.0.0.1", "10.0.0.2", 1, 2) for _ in range(10)]
    uids = {p.uid for p in packets}
    assert len(uids) == 10


def test_l4_without_ip_rejected():
    eth = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02")
    with pytest.raises(ValueError):
        Packet(eth=eth, l4=UDPHeader(1, 2))


def test_packet_protocol_predicates():
    udp = udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                     "10.0.0.1", "10.0.0.2", 1, 2)
    tcp = tcp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                     "10.0.0.1", "10.0.0.2", 1, 2)
    assert udp.is_udp and not udp.is_tcp
    assert tcp.is_tcp and not tcp.is_udp


# ---------------------------------------------------------------------------
# FiveTuple
# ---------------------------------------------------------------------------

def test_five_tuple_from_packet():
    packet = udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                        "10.0.0.1", "10.0.0.2", 1111, 2222)
    key = packet.five_tuple
    assert key == FiveTuple("10.0.0.1", 1111, "10.0.0.2", 2222, PROTO_UDP)


def test_five_tuple_none_for_non_ip():
    eth = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02",
                         ethertype=ETHERTYPE_IPV4)
    packet = Packet(eth=eth)
    assert packet.five_tuple is None


def test_five_tuple_reversed_is_involution():
    key = FiveTuple("10.0.0.1", 1111, "10.0.0.2", 2222, PROTO_UDP)
    assert key.reversed().reversed() == key
    assert key.reversed() != key


def test_five_tuple_is_hashable_and_stable():
    a = FiveTuple("10.0.0.1", 1, "10.0.0.2", 2, PROTO_UDP)
    b = FiveTuple("10.0.0.1", 1, "10.0.0.2", 2, PROTO_UDP)
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_five_tuple_distinct_ports_distinct_flows(p1, p2):
    a = FiveTuple("10.0.0.1", p1, "10.0.0.2", 80, PROTO_UDP)
    b = FiveTuple("10.0.0.1", p2, "10.0.0.2", 80, PROTO_UDP)
    assert (a == b) == (p1 == p2)
