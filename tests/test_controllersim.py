"""Tests for the controller model and the reactive forwarding app."""

from __future__ import annotations

import pytest

from repro.controllersim import (Controller, ControllerConfig, HostLocator,
                                 ReactiveForwardingApp)
from repro.netsim import DuplexLink
from repro.openflow import (ControlChannel, EchoReply, EchoRequest,
                            ErrorMsg, FlowMod, Hello, OFP_NO_BUFFER,
                            OutputAction, PacketIn, PacketOut, PortNo,
                            FeaturesRequest)
from repro.packets import udp_packet
from repro.simkit import mbps, usec


def _packet(src_ip="10.0.0.1", dst_ip="10.0.0.2"):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      src_ip, dst_ip, 1000, 2000)


def _packet_in(packet=None, buffer_id=42, in_port=1):
    packet = packet or _packet()
    data_len = 128 if buffer_id != OFP_NO_BUFFER else packet.wire_len
    return PacketIn(packet=packet, in_port=in_port, buffer_id=buffer_id,
                    data_len=data_len)


def _controller(sim, config=None, locator=None):
    config = config or ControllerConfig()
    cable = DuplexLink(sim, "ctrl", mbps(100))
    channel = ControlChannel(sim, cable)
    to_switch = []
    channel.bind_switch(to_switch.append)
    app = ReactiveForwardingApp(locator=locator or _provisioned_locator())
    controller = Controller(sim, config, channel, app=app)
    return controller, channel, to_switch


def _provisioned_locator():
    locator = HostLocator()
    locator.provision(1, mac="00:00:00:00:00:01", ip="10.0.0.1")
    locator.provision(2, mac="00:00:00:00:00:02", ip="10.0.0.2")
    return locator


# ---------------------------------------------------------------------------
# HostLocator
# ---------------------------------------------------------------------------

def test_locator_prefers_ip_over_mac():
    locator = HostLocator()
    locator.provision(1, mac="00:00:00:00:00:09")
    locator.provision(2, ip="10.0.0.9")
    assert locator.locate(mac="00:00:00:00:00:09", ip="10.0.0.9") == 2


def test_locator_learns_from_packet_in():
    locator = HostLocator()
    message = _packet_in(in_port=7)
    locator.learn_from(message)
    assert locator.locate(ip="10.0.0.1") == 7
    assert locator.locate(mac="00:00:00:00:00:01") == 7


def test_locator_unknown_returns_none():
    assert HostLocator().locate(ip="1.2.3.4") is None


def test_locator_provision_requires_address():
    with pytest.raises(ValueError):
        HostLocator().provision(1)


# ---------------------------------------------------------------------------
# ReactiveForwardingApp
# ---------------------------------------------------------------------------

def test_app_known_destination_produces_flow_mod_and_packet_out():
    app = ReactiveForwardingApp(locator=_provisioned_locator(),
                                idle_timeout=5.0)
    decision = app.decide(_packet_in(buffer_id=42))
    assert decision.flow_mod is not None
    assert decision.flow_mod.idle_timeout == 5.0
    assert decision.flow_mod.actions == (OutputAction(2),)
    assert decision.packet_out.buffer_id == 42
    assert decision.packet_out.data_len == 0


def test_app_unbuffered_request_gets_frame_back():
    app = ReactiveForwardingApp(locator=_provisioned_locator())
    packet = _packet()
    message = _packet_in(packet=packet, buffer_id=OFP_NO_BUFFER)
    decision = app.decide(message)
    assert decision.packet_out.buffer_id == OFP_NO_BUFFER
    assert decision.packet_out.packet is packet
    assert decision.packet_out.data_len == packet.wire_len


def test_app_unknown_destination_floods_without_rule():
    app = ReactiveForwardingApp(locator=HostLocator())
    decision = app.decide(_packet_in(packet=_packet(dst_ip="10.9.9.9")))
    assert decision.flow_mod is None
    assert decision.packet_out.actions == (OutputAction(int(PortNo.FLOOD)),)
    assert app.floods == 1


def test_app_replies_reference_request_xid():
    app = ReactiveForwardingApp(locator=_provisioned_locator())
    message = _packet_in()
    decision = app.decide(message)
    assert decision.flow_mod.in_reply_to == message.xid
    assert decision.packet_out.in_reply_to == message.xid


def test_app_match_is_exact_with_in_port():
    app = ReactiveForwardingApp(locator=_provisioned_locator())
    message = _packet_in(in_port=1)
    decision = app.decide(message)
    assert decision.flow_mod.match.in_port == 1
    assert decision.flow_mod.match.wildcard_count == 0


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------

def test_controller_replies_to_packet_in(sim):
    controller, channel, to_switch = _controller(sim)
    channel.send_to_controller(_packet_in())
    sim.run(until=1.0)
    kinds = [type(m) for m in to_switch]
    assert FlowMod in kinds and PacketOut in kinds
    assert controller.packet_ins_handled == 1
    assert controller.flow_mods_sent == 1
    assert controller.packet_outs_sent == 1


def test_controller_flow_mod_sent_before_packet_out(sim):
    controller, channel, to_switch = _controller(sim)
    channel.send_to_controller(_packet_in())
    sim.run(until=1.0)
    flow_mod_index = next(i for i, m in enumerate(to_switch)
                          if isinstance(m, FlowMod))
    packet_out_index = next(i for i, m in enumerate(to_switch)
                            if isinstance(m, PacketOut))
    assert flow_mod_index < packet_out_index


def test_controller_decision_latency_delays_replies(sim):
    config = ControllerConfig(decision_latency=usec(600))
    controller, channel, to_switch = _controller(sim, config=config)
    channel.send_to_controller(_packet_in())
    sim.run(until=1.0)
    (flow_mod,) = [m for m in to_switch if isinstance(m, FlowMod)]
    assert flow_mod.sent_at >= usec(600)


def test_controller_larger_requests_cost_more(sim):
    config = ControllerConfig()
    small = config.service_time(enclosed_bytes=128, backlog=0)
    large = config.service_time(enclosed_bytes=1000, backlog=0)
    assert large > small * 2


def test_controller_gc_inflation_capped(sim):
    config = ControllerConfig(gc_alpha=0.1, gc_max_factor=1.5)
    base = config.service_time(0, backlog=0)
    assert config.service_time(0, backlog=3) == pytest.approx(base * 1.3)
    assert config.service_time(0, backlog=1000) == pytest.approx(base * 1.5)


def test_controller_answers_echo(sim):
    controller, channel, to_switch = _controller(sim)
    channel.send_to_controller(EchoRequest(payload_len=4))
    sim.run(until=1.0)
    (reply,) = [m for m in to_switch if isinstance(m, EchoReply)]
    assert reply.payload_len == 4


def test_controller_counts_errors(sim):
    controller, channel, to_switch = _controller(sim)
    channel.send_to_controller(ErrorMsg())
    sim.run(until=1.0)
    assert controller.errors_received == 1


def test_controller_handshake_sends_hello_and_features(sim):
    controller, channel, to_switch = _controller(sim)
    controller.start_handshake()
    sim.run(until=1.0)
    kinds = [type(m) for m in to_switch]
    assert Hello in kinds and FeaturesRequest in kinds


def test_controller_periodic_echo(sim):
    config = ControllerConfig(echo_interval=0.1)
    controller, channel, to_switch = _controller(sim, config=config)
    sim.run(until=0.35)
    echoes = [m for m in to_switch if isinstance(m, EchoRequest)]
    assert len(echoes) == 3
    controller.shutdown()
    sim.run(until=1.0)
    assert len([m for m in to_switch
                if isinstance(m, EchoRequest)]) == 3


def test_controller_usage_reflects_work(sim):
    controller, channel, to_switch = _controller(sim)
    baseline = controller.config.baseline_usage_percent
    assert controller.usage_percent() == pytest.approx(baseline)
    for _ in range(100):
        channel.send_to_controller(_packet_in())
    sim.run(until=0.01)
    assert controller.usage_percent() > baseline


def test_controller_config_validation():
    with pytest.raises(ValueError):
        ControllerConfig(cpu_cores=0)
    with pytest.raises(ValueError):
        ControllerConfig(gc_max_factor=0.5)
    with pytest.raises(ValueError):
        ControllerConfig(echo_interval=-1)
