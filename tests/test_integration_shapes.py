"""Integration tests asserting the paper's qualitative results.

These are the reproduction's acceptance tests: small but real end-to-end
sweeps whose *orderings* must match the paper's figures — who wins, where
the knees fall — rather than any absolute number.
"""

from __future__ import annotations

import pytest

from repro.core import buffer_16, buffer_256, flow_buffer_256, no_buffer
from repro.experiments import run_once
from repro.experiments.calibration import prototype_calibration
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import batched_multi_packet_flows, single_packet_flows

#: Workload-A size used by these tests (paper: 1000; smaller for speed,
#: large enough for stable statistics).
N_FLOWS = 300


def _run_a(config, rate_mbps, seed=11):
    workload = single_packet_flows(mbps(rate_mbps), n_flows=N_FLOWS,
                                   rng=RandomStreams(seed))
    return run_once(config, workload, seed=seed)


def _run_b(config, rate_mbps, seed=11):
    workload = batched_multi_packet_flows(mbps(rate_mbps),
                                          rng=RandomStreams(seed))
    return run_once(config, workload, seed=seed,
                    calibration=prototype_calibration())


# ---------------------------------------------------------------------------
# §IV — benefits of the default buffer (Figs. 2-8)
# ---------------------------------------------------------------------------

class TestBenefitsAnalysis:
    """Workload A orderings."""

    def test_fig2_buffer_cuts_control_load_both_directions(self):
        nb = _run_a(no_buffer(), 50)
        b256 = _run_a(buffer_256(), 50)
        assert b256.control_load_up_mbps < 0.3 * nb.control_load_up_mbps
        assert b256.control_load_down_mbps < 0.3 * nb.control_load_down_mbps

    def test_fig2_no_buffer_load_roughly_linear_in_rate(self):
        loads = [_run_a(no_buffer(), r).control_load_up_mbps
                 for r in (20, 40, 60)]
        assert loads[0] < loads[1] < loads[2]
        # Linearity: load ~ rate (each packet_in carries the frame).
        assert loads[1] / loads[0] == pytest.approx(2.0, rel=0.2)

    def test_fig2_buffer16_exhaustion_knee(self):
        """buffer-16 tracks buffer-256 at low rate, degrades at high."""
        low_16 = _run_a(buffer_16(), 20)
        low_256 = _run_a(buffer_256(), 20)
        assert low_16.control_load_up_mbps == pytest.approx(
            low_256.control_load_up_mbps, rel=0.05)
        high_16 = _run_a(buffer_16(), 80)
        high_256 = _run_a(buffer_256(), 80)
        assert high_16.control_load_up_mbps > 2 * high_256.control_load_up_mbps

    def test_fig3_controller_usage_ordering(self):
        nb = _run_a(no_buffer(), 80)
        b16 = _run_a(buffer_16(), 80)
        b256 = _run_a(buffer_256(), 80)
        assert nb.controller_usage_percent > b16.controller_usage_percent
        assert b16.controller_usage_percent > b256.controller_usage_percent

    def test_fig4_switch_usage_similar_with_small_buffer_overhead(self):
        nb = _run_a(no_buffer(), 80)
        b256 = _run_a(buffer_256(), 80)
        ratio = b256.switch_usage_percent / nb.switch_usage_percent
        # "only 5.6% extra load on average": same ballpark, slightly above.
        assert 0.98 < ratio < 1.25

    def test_fig5_fig7_no_buffer_delay_blowup_at_high_rate(self):
        nb_low = _run_a(no_buffer(), 50)
        nb_high = _run_a(no_buffer(), 95)
        b256_high = _run_a(buffer_256(), 95)
        # No-buffer blows up past ~75 Mbps; buffer-256 stays flat.
        assert (nb_high.setup_delay_summary().mean
                > 3 * nb_low.setup_delay_summary().mean)
        assert (b256_high.setup_delay_summary().mean
                < 0.3 * nb_high.setup_delay_summary().mean)
        assert (b256_high.switch_delay_summary().mean
                < 0.3 * nb_high.switch_delay_summary().mean)

    def test_fig5_buffer256_setup_delay_stable_across_rates(self):
        delays = [_run_a(buffer_256(), r).setup_delay_summary().mean
                  for r in (20, 50, 95)]
        assert max(delays) < 1.5 * min(delays)

    def test_fig6_controller_delay_ordering(self):
        nb = _run_a(no_buffer(), 80)
        b256 = _run_a(buffer_256(), 80)
        assert (b256.controller_delay_summary().mean
                < nb.controller_delay_summary().mean)

    def test_fig8_buffer16_saturates_buffer256_does_not(self):
        b16 = _run_a(buffer_16(), 80)
        b256 = _run_a(buffer_256(), 80)
        assert b16.buffer_peak_units == 16
        assert 16 < b256.buffer_peak_units < 256

    def test_fig8_buffer256_occupancy_grows_with_rate(self):
        low = _run_a(buffer_256(), 20)
        high = _run_a(buffer_256(), 95)
        assert high.buffer_peak_units > low.buffer_peak_units


# ---------------------------------------------------------------------------
# §V — flow-granularity mechanism (Figs. 9-13)
# ---------------------------------------------------------------------------

class TestFlowGranularityMechanism:
    """Workload B orderings on the prototype calibration."""

    def test_fig9_flow_granularity_sends_one_request_per_flow(self):
        pkt = _run_b(buffer_256(), 80)
        flow = _run_b(flow_buffer_256(), 80)
        assert flow.packet_in_count == flow.total_flows
        assert pkt.packet_in_count > 1.5 * flow.packet_in_count
        assert flow.control_load_up_mbps < pkt.control_load_up_mbps

    def test_fig9_no_redundant_requests_at_low_rate(self):
        """Below the knee both mechanisms send ~1 request per flow."""
        pkt = _run_b(buffer_256(), 10)
        flow = _run_b(flow_buffer_256(), 10)
        assert pkt.packet_in_count == pkt.total_flows
        assert flow.packet_in_count == flow.total_flows

    def test_fig10_controller_usage_reduced(self):
        pkt = _run_b(buffer_256(), 95)
        flow = _run_b(flow_buffer_256(), 95)
        assert flow.controller_usage_percent < pkt.controller_usage_percent

    def test_fig11_switch_usage_not_increased(self):
        pkt = _run_b(buffer_256(), 95)
        flow = _run_b(flow_buffer_256(), 95)
        assert flow.switch_usage_percent <= pkt.switch_usage_percent * 1.05

    def test_fig12a_setup_delay_not_significantly_increased(self):
        pkt = _run_b(buffer_256(), 35)
        flow = _run_b(flow_buffer_256(), 35)
        # Flow granularity pays extra per-miss work at low rates...
        assert (flow.setup_delay_summary().mean
                > pkt.setup_delay_summary().mean)
        # ...but not "significantly" (paper: 2.05ms vs 1.53ms).
        assert (flow.setup_delay_summary().mean
                < 2 * pkt.setup_delay_summary().mean)

    def test_fig12b_forwarding_delay_wins_at_high_rate(self):
        pkt = _run_b(buffer_256(), 95)
        flow = _run_b(flow_buffer_256(), 95)
        assert (flow.forwarding_delay_summary().mean
                < 0.9 * pkt.forwarding_delay_summary().mean)

    def test_fig12b_forwarding_delay_similar_at_low_rate(self):
        pkt = _run_b(buffer_256(), 20)
        flow = _run_b(flow_buffer_256(), 20)
        assert flow.forwarding_delay_summary().mean == pytest.approx(
            pkt.forwarding_delay_summary().mean, rel=0.05)

    def test_fig13_buffer_units_released_quickly(self):
        pkt = _run_b(buffer_256(), 95)
        flow = _run_b(flow_buffer_256(), 95)
        # Flow granularity: at most one unit per concurrently-pending flow
        # (batches of 5), and far below packet granularity.
        assert flow.buffer_peak_units <= 5
        assert pkt.buffer_peak_units > 2 * flow.buffer_peak_units
        assert flow.buffer_avg_units < pkt.buffer_avg_units

    def test_all_flows_complete_under_both_mechanisms(self):
        for config in (buffer_256(), flow_buffer_256()):
            for rate in (20, 95):
                result = _run_b(config, rate)
                assert result.completed_flows == result.total_flows
