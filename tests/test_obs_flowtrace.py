"""Flow-setup span trees reconstruct the paper's delay decomposition.

The acceptance bar for the tracing layer: for every mechanism, each
traced flow's five child spans exactly tile its ``flow_setup`` root, and
summing them by category reproduces the §III.B definitions the metrics
layer reports independently —

* switch spans + controller span + channel spans == flow setup delay,
* channel.up + controller.app + channel.down == controller delay,
* switch.miss + switch.apply == switch delay.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core import buffer_16, flow_buffer_256, no_buffer
from repro.experiments import run_once
from repro.obs import (FlowSetupTracer, ObsConfig, RunObserver, SpanRecorder,
                       validate_nesting)
from repro.obs.flowtrace import (CAT_CHANNEL, CAT_CONTROLLER, CAT_FLOW,
                                 CAT_SWITCH, EVENT_BUFFER_ADMIT,
                                 EVENT_BUFFER_RELEASE, EVENT_PACKET_DROP,
                                 EVENT_PACKET_IN_RETRY, EVENT_TABLE_MISS,
                                 SPAN_CHANNEL_DOWN, SPAN_CHANNEL_UP,
                                 SPAN_CONTROLLER_APP, SPAN_FLOW_SETUP,
                                 SPAN_SWITCH_APPLY, SPAN_SWITCH_MISS)
from repro.obs.spans import KIND_SPAN
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows

_CHILD_ORDER = (SPAN_SWITCH_MISS, SPAN_CHANNEL_UP, SPAN_CONTROLLER_APP,
                SPAN_CHANNEL_DOWN, SPAN_SWITCH_APPLY)


def _observed_run(config, n_flows=30, sample=1, seed=11):
    workload = single_packet_flows(mbps(20), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    observer = RunObserver(ObsConfig(trace_sample=sample),
                           label=config.label)
    metrics = run_once(config, workload, seed=seed, obs=observer)
    return metrics, observer.observation


def _span_tree(spans):
    """(roots, children-by-parent-id) for the real (non-instant) spans."""
    roots = [s for s in spans if s.name == SPAN_FLOW_SETUP]
    children = {}
    for span in spans:
        if span.kind == KIND_SPAN and span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return roots, children


@pytest.mark.parametrize("config_factory",
                         [no_buffer, buffer_16, flow_buffer_256],
                         ids=lambda f: f.__name__)
def test_decomposition_reconstructs_paper_delays(config_factory):
    """ACCEPTANCE: span sums == reported delays, per mechanism."""
    config = config_factory()
    metrics, observation = _observed_run(config)
    assert validate_nesting(observation.spans) == []

    roots, children = _span_tree(observation.spans)
    assert len(roots) == observation.flows_traced \
        == len(metrics.setup_delays) > 0

    setup_sums, ctrl_sums, switch_sums = [], [], []
    for root in roots:
        kids = children[root.span_id]
        assert [k.name for k in kids] == list(_CHILD_ORDER)
        assert root.category == CAT_FLOW
        # the stages are contiguous: each starts where the previous ended
        assert kids[0].start == root.start
        assert kids[-1].end == root.end
        for left, right in zip(kids, kids[1:]):
            assert right.start == left.end
        # ... so they exactly tile the root
        tiled = sum(k.duration for k in kids)
        assert tiled == pytest.approx(root.duration, rel=1e-9, abs=1e-12)
        by_cat = {}
        for kid in kids:
            by_cat[kid.category] = by_cat.get(kid.category, 0.0) \
                + kid.duration
        assert set(by_cat) == {CAT_SWITCH, CAT_CHANNEL, CAT_CONTROLLER}
        setup_sums.append(by_cat[CAT_SWITCH] + by_cat[CAT_CONTROLLER]
                          + by_cat[CAT_CHANNEL])
        ctrl_sums.append(by_cat[CAT_CHANNEL] + by_cat[CAT_CONTROLLER])
        switch_sums.append(by_cat[CAT_SWITCH])

    # Per-flow category sums reproduce the independently measured
    # §III.B delay lists (order-insensitive: sorted comparison).
    assert sorted(setup_sums) \
        == pytest.approx(sorted(metrics.setup_delays), rel=1e-9, abs=1e-12)
    assert sorted(ctrl_sums) \
        == pytest.approx(sorted(metrics.controller_delays),
                         rel=1e-9, abs=1e-12)
    assert sorted(switch_sums) \
        == pytest.approx(sorted(metrics.switch_delays),
                         rel=1e-9, abs=1e-12)


def test_root_span_attrs_carry_flow_key_and_mechanism():
    config = buffer_16()
    _, observation = _observed_run(config, n_flows=10)
    roots, _ = _span_tree(observation.spans)
    for root in roots:
        assert root.attrs["mechanism"] == config.label
        assert root.attrs["missed"] is True
        assert root.attrs["stored"] is True
        assert "flow_id" in root.attrs and "buffer_id" in root.attrs
        assert root.track == f"flow-{root.attrs['flow_id']}"


def test_buffer_admit_and_release_instants_present_when_buffering():
    _, observation = _observed_run(buffer_16(), n_flows=10)
    names = {s.name for s in observation.spans}
    assert EVENT_TABLE_MISS in names
    assert EVENT_BUFFER_ADMIT in names
    assert EVENT_BUFFER_RELEASE in names
    admit = next(s for s in observation.spans
                 if s.name == EVENT_BUFFER_ADMIT)
    assert "buffer_id" in admit.attrs and "flow_id" in admit.attrs


def test_no_buffer_emits_no_admit_instants():
    # Without buffering nothing is ever admitted; the release event still
    # fires when the packet_out hands the carried packet back, but with no
    # buffer id attached.
    _, observation = _observed_run(no_buffer(), n_flows=10)
    names = {s.name for s in observation.spans}
    assert EVENT_TABLE_MISS in names
    assert EVENT_BUFFER_ADMIT not in names
    releases = [s for s in observation.spans
                if s.name == EVENT_BUFFER_RELEASE]
    assert all(s.attrs["buffer_id"] is None for s in releases)
    roots, _ = _span_tree(observation.spans)
    assert roots and all("buffer_id" not in r.attrs for r in roots)
    assert all(r.attrs["stored"] is False for r in roots)


def test_sampling_traces_every_nth_flow_only():
    metrics, observation = _observed_run(buffer_16(), n_flows=30, sample=3)
    roots, _ = _span_tree(observation.spans)
    assert 0 < len(roots) < len(metrics.setup_delays)
    assert all(r.attrs["flow_id"] % 3 == 0 for r in roots)
    assert observation.flows_traced == len(roots)


def test_tracer_rejects_bad_sample():
    with pytest.raises(ValueError, match="sample must be >= 1"):
        FlowSetupTracer(SpanRecorder(), sample=0)


# ---------------------------------------------------------------------------
# Synthetic-event unit coverage (drop reasons, retries) — the tracer is
# duck-typed against the emitters, so a bare EventEmitter drives it.
# ---------------------------------------------------------------------------

def _packet(flow_id=1, uid=100):
    return SimpleNamespace(flow_id=flow_id, uid=uid)


def test_drop_instant_carries_reason_and_marks_first_packet():
    from repro.simkit import EventEmitter
    recorder = SpanRecorder()
    tracer = FlowSetupTracer(recorder, mechanism="buffer-16")
    events = EventEmitter()
    tracer.attach(events)
    packet = _packet()
    events.emit("packet_ingress", 0.0, packet, 1)
    events.emit("table_miss", 0.0, packet, 1)
    events.emit("packet_drop", 0.001, packet, "buffer_full")
    drop = next(s for s in recorder.records if s.name == EVENT_PACKET_DROP)
    assert drop.attrs["drop_reason"] == "buffer_full"
    assert drop.attrs["mechanism"] == "buffer-16"
    assert tracer.pending_flows == 1      # setup never finalized
    assert tracer.flows_traced == 0


def test_retry_instants_count_re_requests():
    from repro.simkit import EventEmitter
    recorder = SpanRecorder()
    tracer = FlowSetupTracer(recorder)
    events = EventEmitter()
    tracer.attach(events)
    packet = _packet()
    events.emit("packet_ingress", 0.0, packet, 1)
    first = SimpleNamespace(packet=packet, xid=1, is_retry=False)
    retry = SimpleNamespace(packet=packet, xid=2, is_retry=True)
    events.emit("packet_in_sent", 0.001, first)
    events.emit("packet_in_sent", 0.003, retry)
    retries = [s for s in recorder.records
               if s.name == EVENT_PACKET_IN_RETRY]
    assert len(retries) == 1
    assert retries[0].attrs["retry"] == 1
