"""Tests for events, timeouts and conditions."""

from __future__ import annotations

import pytest

from repro.simkit import (AllOf, AnyOf, ResourceError, Simulator, Timeout)


def test_event_initially_pending(sim):
    event = sim.event()
    assert not event.triggered
    assert not event.processed


def test_succeed_delivers_value(sim):
    event = sim.event()
    event.succeed("value")
    sim.run()
    assert event.ok
    assert event.value == "value"
    assert event.processed


def test_fail_delivers_exception(sim):
    event = sim.event()
    error = RuntimeError("boom")
    event.defused = True
    event.fail(error)
    sim.run()
    assert not event.ok
    assert event.value is error


def test_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed()
    with pytest.raises(ResourceError):
        event.succeed()
    with pytest.raises(ResourceError):
        event.fail(RuntimeError())
    sim.run()


def test_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_value_before_trigger_raises(sim):
    event = sim.event()
    with pytest.raises(ResourceError):
        _ = event.value
    with pytest.raises(ResourceError):
        _ = event.ok


def test_callbacks_run_on_processing(sim):
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed(7)
    sim.run()
    assert seen == [7]


def test_callback_added_after_processing_still_runs(sim):
    event = sim.event()
    event.succeed(1)
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [1]


def test_late_callback_keeps_trigger_priority(sim):
    """REGRESSION: a callback added after an *urgent* event processed
    must reschedule at the trigger's priority — it used to fall back to
    PRIORITY_NORMAL and lose its place against same-instant work."""
    event = sim.event()
    event.succeed(5, urgent=True)
    sim.run()
    order = []
    # Scheduled first (smaller seq) at NORMAL; the late callback still
    # wins the instant because it inherits the trigger's URGENT priority.
    sim.schedule(0.0, order.append, "normal")
    event.add_callback(lambda e: order.append("late-urgent"))
    sim.run()
    assert order == ["late-urgent", "normal"]


def test_callbacks_never_run_synchronously(sim):
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(True))
    event.succeed()
    assert seen == []  # not yet - runs at the scheduled instant
    sim.run()
    assert seen == [True]


def test_timeout_fires_after_delay(sim):
    timeout = Timeout(sim, 2.0, value="done")
    fired = []
    timeout.add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == [2.0]
    assert timeout.value == "done"


def test_timeout_cancel(sim):
    timeout = sim.timeout(1.0)
    fired = []
    timeout.add_callback(lambda e: fired.append(True))
    timeout.cancel()
    sim.run()
    assert fired == []


def test_trigger_copies_outcome(sim):
    source = sim.event()
    target = sim.event()
    source.succeed("copied")
    sim.run()
    target.trigger(source)
    sim.run()
    assert target.ok and target.value == "copied"


def test_anyof_fires_on_first(sim):
    slow = sim.timeout(5.0, value="slow")
    fast = sim.timeout(1.0, value="fast")
    condition = AnyOf(sim, [slow, fast])
    fired = []
    condition.add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    assert fast in condition.value
    assert slow not in condition.value


def test_allof_waits_for_every_event(sim):
    first = sim.timeout(1.0)
    second = sim.timeout(3.0)
    condition = AllOf(sim, [first, second])
    fired = []
    condition.add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]
    assert len(condition.value) == 2


def test_empty_condition_succeeds_immediately(sim):
    condition = AllOf(sim, [])
    sim.run()
    assert condition.triggered
    assert len(condition.value) == 0


def test_condition_fails_when_member_fails(sim):
    good = sim.timeout(2.0)
    bad = sim.event()
    condition = AllOf(sim, [good, bad])
    sim.schedule(1.0, lambda: bad.fail(ValueError("nope")))
    condition.add_callback(lambda e: None)
    sim.run()
    assert condition.triggered
    assert not condition.ok
    assert isinstance(condition.value, ValueError)


def test_condition_rejects_mixed_simulators(sim):
    other = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [sim.timeout(1.0), other.timeout(1.0)])
