"""Tests for ServiceStation — the queueing workhorse."""

from __future__ import annotations

import pytest

from repro.simkit import ServiceStation, Simulator


def test_single_server_serves_fifo(sim):
    station = ServiceStation(sim, "s", servers=1)
    done = []
    station.submit("a", 1.0, lambda p: done.append((p, sim.now)))
    station.submit("b", 1.0, lambda p: done.append((p, sim.now)))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_multi_server_parallelism(sim):
    station = ServiceStation(sim, "s", servers=2)
    done = []
    for name in ("a", "b", "c"):
        station.submit(name, 1.0, lambda p: done.append((p, sim.now)))
    sim.run()
    # a and b run in parallel; c waits for a free server.
    assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_zero_service_time_allowed(sim):
    station = ServiceStation(sim, "s")
    done = []
    station.submit("instant", 0.0, done.append)
    sim.run()
    assert done == ["instant"]


def test_negative_service_time_rejected(sim):
    station = ServiceStation(sim, "s")
    with pytest.raises(ValueError):
        station.submit("x", -1.0)


def test_queue_and_busy_counters(sim):
    station = ServiceStation(sim, "s", servers=1)
    station.submit("a", 5.0)
    station.submit("b", 5.0)
    station.submit("c", 5.0)
    assert station.in_service == 1
    assert station.queue_length == 2
    assert station.backlog == 3
    sim.run()
    assert station.backlog == 0
    assert station.max_queue_length == 2


def test_busy_time_accounting(sim):
    station = ServiceStation(sim, "s", servers=2)
    station.submit("a", 2.0)
    station.submit("b", 3.0)
    sim.run(until=10.0)
    assert station.busy_time == pytest.approx(5.0)
    # 5 busy server-seconds over 10 wall seconds = 50%.
    assert station.utilization_percent() == pytest.approx(50.0)


def test_utilization_can_exceed_100_on_multicore(sim):
    station = ServiceStation(sim, "s", servers=4)
    for _ in range(4):
        station.submit(None, 10.0)
    sim.run(until=10.0)
    assert station.utilization_percent() == pytest.approx(400.0)


def test_job_timing_properties(sim):
    station = ServiceStation(sim, "s", servers=1)
    first = station.submit("a", 2.0)
    second = station.submit("b", 1.0)
    sim.run()
    assert first.queueing_delay == 0.0
    assert first.sojourn_time == 2.0
    assert second.queueing_delay == 2.0
    assert second.sojourn_time == 3.0


def test_mean_sojourn(sim):
    station = ServiceStation(sim, "s", servers=1)
    station.submit("a", 1.0)
    station.submit("b", 1.0)
    sim.run()
    assert station.mean_sojourn() == pytest.approx(1.5)


def test_mean_sojourn_empty_is_zero(sim):
    station = ServiceStation(sim, "s")
    assert station.mean_sojourn() == 0.0


def test_reset_accounting(sim):
    station = ServiceStation(sim, "s")
    station.submit(None, 1.0)
    sim.run(until=2.0)
    station.reset_accounting()
    sim.run(until=4.0)
    assert station.busy_time == 0.0
    assert station.utilization_percent() == 0.0
    assert station.jobs_completed == 0


def test_job_unstarted_timing_raises(sim):
    station = ServiceStation(sim, "s", servers=1)
    station.submit("a", 5.0)
    waiting = station.submit("b", 5.0)
    with pytest.raises(ValueError):
        _ = waiting.queueing_delay
    with pytest.raises(ValueError):
        _ = waiting.sojourn_time


def test_servers_validation(sim):
    with pytest.raises(ValueError):
        ServiceStation(sim, "s", servers=0)


def test_completion_callback_can_submit_more_work(sim):
    station = ServiceStation(sim, "s")
    done = []
    def chain(payload):
        done.append(payload)
        if payload < 3:
            station.submit(payload + 1, 1.0, chain)
    station.submit(1, 1.0, chain)
    sim.run()
    assert done == [1, 2, 3]
    assert sim.now == 3.0
