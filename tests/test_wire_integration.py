"""Integration: the wire codec survives everything a real run produces.

Taps both control-channel directions of live testbed runs, encodes every
OpenFlow message to OpenFlow 1.0 bytes, decodes it back, and checks the
reconstruction — proving the size accounting used by the load figures is
byte-for-byte real.
"""

from __future__ import annotations

import pytest

from repro.core import buffer_256, flow_buffer_256, no_buffer
from repro.experiments import build_testbed
from repro.openflow import (FlowMod, OFMessage, PacketIn, PacketOut,
                            decode_message, encode_message)
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import batched_multi_packet_flows, single_packet_flows


def _codec_check(message: OFMessage, failures: list) -> None:
    try:
        wire = encode_message(message)
    except Exception as exc:     # noqa: BLE001 - collecting for assert
        failures.append((message, f"encode: {exc}"))
        return
    if len(wire) != message.wire_len:
        failures.append((message,
                         f"length {len(wire)} != wire_len "
                         f"{message.wire_len}"))
        return
    try:
        decoded = decode_message(wire)
    except Exception as exc:     # noqa: BLE001
        failures.append((message, f"decode: {exc}"))
        return
    if type(decoded) is not type(message) or decoded.xid != message.xid:
        failures.append((message, "identity lost"))
        return
    if isinstance(message, PacketIn):
        if decoded.buffer_id != message.buffer_id:
            failures.append((message, "buffer_id lost"))
        if decoded.packet.five_tuple != message.packet.five_tuple:
            failures.append((message, "flow key lost"))
    if isinstance(message, FlowMod) and decoded.match != message.match:
        failures.append((message, "match lost"))
    if isinstance(message, PacketOut) and decoded.actions != message.actions:
        failures.append((message, "actions lost"))


@pytest.mark.parametrize("config", [no_buffer(), buffer_256(),
                                    flow_buffer_256()],
                         ids=["no-buffer", "buffer-256", "flow-buffer"])
def test_every_control_message_encodes_and_decodes(config):
    workload = single_packet_flows(mbps(50), n_flows=25,
                                   rng=RandomStreams(60))
    testbed = build_testbed(config, workload, seed=60)
    failures: list = []
    seen = {"count": 0}

    def tap(time, item, size):
        if isinstance(item, OFMessage):
            seen["count"] += 1
            _codec_check(item, failures)

    testbed.control_cable.forward.add_tap(tap)
    testbed.control_cable.reverse.add_tap(tap)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    testbed.shutdown()

    assert seen["count"] > 50           # handshake + echoes + 25 flows
    assert failures == []


def test_workload_b_messages_encode_too():
    workload = batched_multi_packet_flows(mbps(80), n_flows=10,
                                          packets_per_flow=6, batch_size=5,
                                          rng=RandomStreams(61))
    testbed = build_testbed(flow_buffer_256(), workload, seed=61)
    failures: list = []

    def tap(time, item, size):
        if isinstance(item, OFMessage):
            _codec_check(item, failures)

    testbed.control_cable.forward.add_tap(tap)
    testbed.control_cable.reverse.add_tap(tap)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=2.0)
    testbed.shutdown()
    assert failures == []


def test_wire_size_equals_capture_accounting():
    """The capture layer's byte counts match real encoded sizes exactly
    (modulo the TCP/IP encapsulation constant per message)."""
    from repro.openflow import DEFAULT_ENCAPSULATION_OVERHEAD
    workload = single_packet_flows(mbps(40), n_flows=10,
                                   rng=RandomStreams(62))
    testbed = build_testbed(buffer_256(), workload, seed=62)
    encoded_bytes = {"total": 0, "count": 0}

    def tap(time, item, size):
        if isinstance(item, OFMessage):
            encoded_bytes["total"] += len(encode_message(item))
            encoded_bytes["count"] += 1

    testbed.control_cable.forward.add_tap(tap)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    captured = testbed.metrics.capture_up.bytes_total
    expected = (encoded_bytes["total"]
                + encoded_bytes["count"] * DEFAULT_ENCAPSULATION_OVERHEAD)
    assert captured == expected
    testbed.shutdown()
