"""Tests for the egress QoS scheduler (the paper's future-work extension)."""

from __future__ import annotations

import pytest

from repro.netsim import Link
from repro.packets import EthernetHeader, IPv4Header, Packet, PROTO_UDP, UDPHeader
from repro.simkit import Simulator, mbps
from repro.switchsim import (CLASS_ASSURED, CLASS_BEST_EFFORT,
                             CLASS_EXPEDITED, PriorityEgressScheduler,
                             classify_dscp)
from repro.switchsim.qos import attach_scheduler


def _packet(dscp=0, frame_len=1000, tag=0):
    eth = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02")
    ip = IPv4Header("10.0.0.1", "10.0.0.2", protocol=PROTO_UDP, dscp=dscp)
    l4 = UDPHeader(1000 + tag, 2000)
    return Packet(eth=eth, ip=ip, l4=l4, payload_len=frame_len - 42)


def _scheduler(sim, bandwidth=mbps(100), queue_limit=1024):
    link = Link(sim, "egress", bandwidth, propagation_delay=0.0)
    delivered = []
    link.connect(lambda p: delivered.append((sim.now, p)))
    return PriorityEgressScheduler(sim, link, queue_limit=queue_limit), delivered


def test_classify_dscp_bands():
    assert classify_dscp(_packet(dscp=0)) == CLASS_BEST_EFFORT
    assert classify_dscp(_packet(dscp=7)) == CLASS_BEST_EFFORT
    assert classify_dscp(_packet(dscp=10)) == CLASS_ASSURED
    assert classify_dscp(_packet(dscp=46)) == CLASS_EXPEDITED
    no_ip = Packet(eth=EthernetHeader("00:00:00:00:00:01",
                                      "00:00:00:00:00:02"))
    assert classify_dscp(no_ip) == CLASS_BEST_EFFORT


def test_idle_link_transmits_immediately(sim):
    scheduler, delivered = _scheduler(sim)
    scheduler.enqueue(_packet())
    sim.run(until=1.0)
    assert len(delivered) == 1
    assert scheduler.backlog == 0


def test_priority_overtakes_queued_best_effort(sim):
    scheduler, delivered = _scheduler(sim)
    # Fill with best-effort; one is in flight, the rest queue.
    for tag in range(5):
        scheduler.enqueue(_packet(dscp=0, tag=tag))
    # An expedited packet arrives late but must go second (right after
    # the frame already on the wire).
    expedited = _packet(dscp=46, tag=99)
    scheduler.enqueue(expedited)
    sim.run(until=1.0)
    order = [p for _, p in delivered]
    assert order[1] is expedited
    assert len(delivered) == 6


def test_fifo_within_a_class(sim):
    scheduler, delivered = _scheduler(sim)
    packets = [_packet(dscp=46, tag=i) for i in range(4)]
    for packet in packets:
        scheduler.enqueue(packet)
    sim.run(until=1.0)
    assert [p for _, p in delivered] == packets


def test_strict_priority_starves_lower_classes(sim):
    """With a saturating expedited stream, best-effort waits it out."""
    scheduler, delivered = _scheduler(sim, bandwidth=mbps(8))   # 1ms/frame
    best_effort = _packet(dscp=0, tag=7)
    scheduler.enqueue(best_effort)
    for tag in range(10):
        scheduler.enqueue(_packet(dscp=46, tag=tag))
    sim.run(until=1.0)
    # While a filler frame is on the wire, a later expedited arrival
    # beats an earlier-queued best-effort one.
    scheduler.enqueue(_packet(dscp=0, tag=6))    # goes on the wire (idle)
    scheduler.enqueue(_packet(dscp=0, tag=8))    # queues
    scheduler.enqueue(_packet(dscp=46, tag=20))  # queues after, wins
    sim.run(until=2.0)
    classes = [classify_dscp(p) for _, p in delivered]
    # The final two deliveries: expedited before the queued best-effort.
    assert classes[-2] == CLASS_EXPEDITED
    assert classes[-1] == CLASS_BEST_EFFORT


def test_queue_limit_tail_drops(sim):
    scheduler, delivered = _scheduler(sim, bandwidth=mbps(1),
                                      queue_limit=2)
    results = [scheduler.enqueue(_packet(dscp=0, tag=i)) for i in range(5)]
    # First goes to the wire, two queue, the rest tail-drop.
    assert results == [True, True, True, False, False]
    assert scheduler.stats[CLASS_BEST_EFFORT].dropped == 2
    sim.run(until=30.0)
    assert len(delivered) == 3


def test_per_class_stats(sim):
    scheduler, delivered = _scheduler(sim, bandwidth=mbps(8))
    for tag in range(3):
        scheduler.enqueue(_packet(dscp=46, tag=tag))
    sim.run(until=1.0)
    stats = scheduler.stats[CLASS_EXPEDITED]
    assert stats.enqueued == 3
    assert stats.transmitted == 3
    # First frame had no wait; second waited 1ms; third 2ms.
    assert stats.mean_queueing_delay() == pytest.approx(0.001, rel=0.05)
    assert stats.max_queue_length == 2
    assert any("expedited" in line for line in scheduler.summary())


def test_invalid_configuration(sim):
    link = Link(sim, "l", mbps(10))
    link.connect(lambda p: None)
    with pytest.raises(ValueError):
        PriorityEgressScheduler(sim, link, queue_limit=0)
    scheduler = PriorityEgressScheduler(sim, link)
    with pytest.raises(ValueError):
        scheduler.enqueue(_packet(), service_class=99)


def test_attach_scheduler_to_switch_port(sim):
    """End to end: the datapath's egress flows through the scheduler."""
    from repro.core import PacketGranularityBuffer
    from repro.netsim import DuplexLink
    from repro.openflow import (ControlChannel, FlowEntry, Match,
                                OutputAction)
    from repro.switchsim import Switch, SwitchConfig

    ctrl = DuplexLink(sim, "ctrl", mbps(100))
    channel = ControlChannel(sim, ctrl)
    channel.bind_controller(lambda m: None)
    switch = Switch(sim, SwitchConfig(), PacketGranularityBuffer(16),
                    channel)
    h1 = DuplexLink(sim, "h1", mbps(100))
    h2 = DuplexLink(sim, "h2", mbps(100))
    switch.attach_port(1, h1, switch_side_forward=False)
    port2 = switch.attach_port(2, h2, switch_side_forward=False)
    delivered = []
    h2.reverse.connect(delivered.append)
    scheduler = attach_scheduler(port2, sim)

    packet = _packet(dscp=46)
    switch.flow_table.insert(
        FlowEntry(match=Match.exact_from_packet(packet, in_port=1),
                  actions=(OutputAction(2),)), now=0.0)
    h1.forward.send(packet, packet.wire_len)
    sim.run(until=1.0)
    assert delivered == [packet]
    assert scheduler.stats[CLASS_EXPEDITED].transmitted == 1
    switch.shutdown()
