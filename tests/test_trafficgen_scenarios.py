"""Tests for the extension workloads: TCP eviction and recurring flows."""

from __future__ import annotations

import pytest

from repro.controllersim import ControllerConfig
from repro.core import buffer_256, flow_buffer_256, no_buffer
from repro.experiments import TestbedCalibration, run_once
from repro.simkit import mbps
from repro.switchsim import SwitchConfig
from repro.trafficgen import recurring_flows, tcp_eviction_scenario


# ---------------------------------------------------------------------------
# tcp_eviction_scenario structure
# ---------------------------------------------------------------------------

def test_tcp_scenario_is_one_flow():
    workload = tcp_eviction_scenario(mbps(50))
    assert workload.n_flows == 1
    assert workload.flows[0].n_packets == workload.n_packets
    keys = {p.five_tuple for _, p in workload.entries}
    assert len(keys) == 1


def test_tcp_scenario_starts_with_handshake():
    workload = tcp_eviction_scenario(mbps(50))
    first, second = workload.entries[0][1], workload.entries[1][1]
    assert first.l4.is_syn
    assert not second.l4.is_syn
    # Handshake segments are minimum-size frames.
    assert first.wire_len == 60


def test_tcp_scenario_idle_gap_present():
    workload = tcp_eviction_scenario(mbps(50), initial_packets=5,
                                     idle_gap=2.0, burst_packets=10)
    times = [t for t, _ in workload.entries]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert max(gaps) >= 2.0
    assert workload.n_packets == 2 + 5 + 10


def test_tcp_scenario_burst_start_marker():
    workload = tcp_eviction_scenario(mbps(50), idle_gap=1.5)
    burst_entries = [t for t, _ in workload.entries
                     if t >= workload.burst_start]
    assert len(burst_entries) == 50


def test_tcp_scenario_validation():
    with pytest.raises(ValueError):
        tcp_eviction_scenario(mbps(50), idle_gap=0.0)
    with pytest.raises(ValueError):
        tcp_eviction_scenario(mbps(50), burst_packets=0)


# ---------------------------------------------------------------------------
# tcp_eviction_scenario end to end (the paper's §VI.B argument)
# ---------------------------------------------------------------------------

def _eviction_calibration():
    return TestbedCalibration(
        switch=SwitchConfig(),
        controller=ControllerConfig(flow_idle_timeout=0.3))


def test_rule_evicted_while_idle_causes_second_miss():
    workload = tcp_eviction_scenario(mbps(50), idle_gap=1.0,
                                     burst_packets=20)
    result = run_once(flow_buffer_256(), workload,
                      calibration=_eviction_calibration())
    # Exactly two requests over the connection's lifetime: the SYN and
    # the first burst segment after the rule was idle-evicted.
    assert result.packet_in_count == 2
    assert result.completed_flows == 1


def test_no_buffer_ships_every_burst_miss_in_full():
    workload = tcp_eviction_scenario(mbps(80), idle_gap=1.0)
    buffered = run_once(flow_buffer_256(), workload,
                        calibration=_eviction_calibration())
    bare = run_once(no_buffer(), workload,
                    calibration=_eviction_calibration())
    assert bare.packet_in_count > buffered.packet_in_count
    assert bare.control_load_up_mbps > 5 * buffered.control_load_up_mbps


def test_idle_timeout_longer_than_gap_means_no_second_miss():
    calibration = TestbedCalibration(
        switch=SwitchConfig(),
        controller=ControllerConfig(flow_idle_timeout=30.0))
    workload = tcp_eviction_scenario(mbps(50), idle_gap=1.0)
    result = run_once(flow_buffer_256(), workload, calibration=calibration)
    assert result.packet_in_count == 1      # rule survived the idle gap


# ---------------------------------------------------------------------------
# recurring_flows
# ---------------------------------------------------------------------------

def test_recurring_flows_structure():
    workload = recurring_flows(mbps(50), n_flows=4, rounds=3)
    assert workload.n_packets == 12
    assert workload.n_flows == 4
    assert all(spec.n_packets == 3 for spec in workload.flows.values())


def test_recurring_flows_round_robin_order():
    workload = recurring_flows(mbps(50), n_flows=3, rounds=2)
    order = [p.flow_id for _, p in workload.entries]
    assert order == [0, 1, 2, 0, 1, 2]


def test_recurring_flows_validation():
    with pytest.raises(ValueError):
        recurring_flows(mbps(50), n_flows=0)
    with pytest.raises(ValueError):
        recurring_flows(mbps(50), rounds=0)


def test_recurring_flows_hit_after_first_round():
    """With a big enough table, only the first round misses."""
    workload = recurring_flows(mbps(10), n_flows=5, rounds=4)
    result = run_once(buffer_256(), workload)
    assert result.packet_in_count == 5
    assert result.completed_flows == 5
