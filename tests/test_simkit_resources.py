"""Tests for Resource, Store and TokenBucket."""

from __future__ import annotations

import pytest

from repro.simkit import Resource, ResourceError, Store, TokenBucket


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity(sim):
    resource = Resource(sim, capacity=2)
    first = resource.request()
    second = resource.request()
    third = resource.request()
    sim.run()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.count == 2
    assert resource.queue_length == 1


def test_resource_release_grants_next_waiter(sim):
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    sim.run()
    resource.release(first)
    sim.run()
    assert second.triggered
    assert resource.count == 1


def test_resource_release_unheld_raises(sim):
    resource = Resource(sim, capacity=1)
    pending = resource.request()
    waiting = resource.request()
    sim.run()
    with pytest.raises(ResourceError):
        resource.release(waiting)
    resource.release(pending)


def test_resource_fifo_order(sim):
    resource = Resource(sim, capacity=1)
    held = resource.request()
    waiters = [resource.request() for _ in range(3)]
    sim.run()
    granted = []
    for i, waiter in enumerate(waiters):
        waiter.add_callback(lambda e, i=i: granted.append(i))
    resource.release(held)
    sim.run()
    resource.release(waiters[0])
    sim.run()
    assert granted == [0, 1]


def test_resource_cancel_waiting_request(sim):
    resource = Resource(sim, capacity=1)
    held = resource.request()
    waiting = resource.request()
    resource.cancel(waiting)
    sim.run()
    resource.release(held)
    sim.run()
    assert not waiting.triggered


def test_resource_capacity_validation(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_get_returns_put_items_in_order(sim):
    store = Store(sim)
    store.put("a")
    store.put("b")
    first = store.get()
    second = store.get()
    sim.run()
    assert first.value == "a"
    assert second.value == "b"


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    get = store.get()
    sim.run()
    assert not get.triggered
    store.put("late")
    sim.run()
    assert get.value == "late"


def test_store_bounded_put_blocks_when_full(sim):
    store = Store(sim, capacity=1)
    first = store.put("a")
    second = store.put("b")
    sim.run()
    assert first.triggered
    assert not second.triggered
    got = store.get()
    sim.run()
    assert got.value == "a"
    assert second.triggered
    assert list(store.items) == ["b"]


def test_store_try_get(sim):
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    sim.run()
    assert store.try_get() == "x"
    assert len(store) == 0


def test_store_capacity_validation(sim):
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------

def test_token_bucket_immediate_when_tokens_available(sim):
    bucket = TokenBucket(sim, rate_bytes_per_s=1000, burst_bytes=500)
    assert bucket.consume(300) == 0.0
    assert bucket.tokens == pytest.approx(200)


def test_token_bucket_defers_when_exhausted(sim):
    bucket = TokenBucket(sim, rate_bytes_per_s=1000, burst_bytes=100)
    bucket.consume(100)
    # 200 more bytes need 0.2s of refill.
    assert bucket.consume(200) == pytest.approx(0.2)


def test_token_bucket_refills_over_time(sim):
    bucket = TokenBucket(sim, rate_bytes_per_s=100, burst_bytes=100)
    bucket.consume(100)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert bucket.tokens == pytest.approx(100)  # capped at burst


def test_token_bucket_validation(sim):
    with pytest.raises(ValueError):
        TokenBucket(sim, rate_bytes_per_s=0, burst_bytes=10)
    with pytest.raises(ValueError):
        TokenBucket(sim, rate_bytes_per_s=10, burst_bytes=0)
    bucket = TokenBucket(sim, rate_bytes_per_s=10, burst_bytes=10)
    with pytest.raises(ValueError):
        bucket.consume(-1)
