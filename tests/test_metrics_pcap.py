"""Tests for pcap export."""

from __future__ import annotations

import io
import struct

from repro.core import buffer_256
from repro.experiments import build_testbed
from repro.metrics import PcapWriter
from repro.netsim import Link
from repro.packets import decode_packet, udp_packet
from repro.simkit import RandomStreams, Simulator, mbps
from repro.trafficgen import single_packet_flows


def _read_pcap(data: bytes):
    magic, major, minor, _tz, _sig, snaplen, linktype = struct.unpack(
        "<IHHiIII", data[:24])
    assert magic == 0xA1B2C3D4
    assert (major, minor) == (2, 4)
    assert linktype == 1
    offset = 24
    records = []
    while offset < len(data):
        sec, usec, caplen, origlen = struct.unpack(
            "<IIII", data[offset:offset + 16])
        assert caplen == origlen
        frame = data[offset + 16:offset + 16 + caplen]
        records.append((sec + usec / 1e6, frame))
        offset += 16 + caplen
    return records


def test_pcap_round_trip_single_link():
    sim = Simulator()
    link = Link(sim, "l", mbps(100))
    link.connect(lambda p: None)
    writer = PcapWriter(link)
    packet = udp_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                        "1.2.3.4", "5.6.7.8", 1111, 2222, frame_len=200)
    sim.schedule(0.5, link.send, packet, packet.wire_len)
    sim.run()
    stream = io.BytesIO()
    assert writer.dump(stream) == 1
    ((timestamp, frame),) = _read_pcap(stream.getvalue())
    assert abs(timestamp - 0.5) < 1e-5
    decoded = decode_packet(frame)
    assert decoded.ip.src_ip == "1.2.3.4"
    assert decoded.l4.dst_port == 2222


def test_pcap_from_testbed_data_link():
    workload = single_packet_flows(mbps(30), n_flows=5,
                                   rng=RandomStreams(33))
    testbed = build_testbed(buffer_256(), workload, seed=33)
    cable = testbed.topology.cable("host2", "ovs")
    writer = PcapWriter(cable.reverse)      # switch -> host2 direction
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    stream = io.BytesIO()
    assert writer.dump(stream) == 5
    records = _read_pcap(stream.getvalue())
    assert len(records) == 5
    times = [t for t, _ in records]
    assert times == sorted(times)
    sources = {decode_packet(frame).ip.src_ip for _, frame in records}
    assert len(sources) == 5                 # forged pktgen sources
    testbed.shutdown()


def test_pcap_skips_bare_control_messages():
    workload = single_packet_flows(mbps(30), n_flows=3,
                                   rng=RandomStreams(34))
    testbed = build_testbed(buffer_256(), workload, seed=34)
    writer = PcapWriter(testbed.control_cable.reverse)  # to switch
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    # flow_mods have no frame; buffered packet_outs have no frame either.
    assert writer.skipped > 0
    assert writer.frame_count == 0
    testbed.shutdown()


def test_pcap_save_to_file(tmp_path):
    sim = Simulator()
    link = Link(sim, "l", mbps(100))
    link.connect(lambda p: None)
    writer = PcapWriter(link)
    packet = udp_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                        "1.2.3.4", "5.6.7.8", 1, 2)
    link.send(packet, packet.wire_len)
    sim.run()
    path = tmp_path / "capture.pcap"
    assert writer.save(str(path)) == 1
    assert path.stat().st_size == 24 + 16 + packet.wire_len


def test_control_pcap_captures_dissectable_openflow():
    from repro.metrics import ControlPcapWriter
    from repro.openflow import PacketIn, decode_message

    workload = single_packet_flows(mbps(30), n_flows=4,
                                   rng=RandomStreams(35))
    testbed = build_testbed(buffer_256(), workload, seed=35)
    writer = ControlPcapWriter(testbed.control_cable.forward)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    stream = io.BytesIO()
    count = writer.dump(stream)
    assert count >= 4                       # at least the packet_ins
    records = _read_pcap(stream.getvalue())
    # Strip the synthetic Eth/IP/TCP framing and decode the OpenFlow
    # payload with the real codec.
    packet_ins = 0
    for _time, frame in records:
        decoded_frame = decode_packet(frame)
        assert decoded_frame.l4.dst_port == 6653
        payload = frame[54:]
        message = decode_message(payload)
        if isinstance(message, PacketIn):
            packet_ins += 1
    assert packet_ins == 4
    testbed.shutdown()


def test_control_pcap_tcp_sequence_advances():
    from repro.metrics import ControlPcapWriter
    from repro.openflow import Hello
    from repro.netsim import Link as _Link

    sim = Simulator()
    link = _Link(sim, "ctrl", mbps(100))
    link.connect(lambda m: None)
    writer = ControlPcapWriter(link)
    for _ in range(3):
        link.send(Hello(), 62)
    sim.run()
    stream = io.BytesIO()
    writer.dump(stream)
    records = _read_pcap(stream.getvalue())
    seqs = [decode_packet(frame).l4.seq for _, frame in records]
    assert seqs == [1, 9, 17]               # hello is 8 bytes on the wire
