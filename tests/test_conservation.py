"""Conservation invariants: every packet is accounted for, always.

For any mechanism and any workload, after the network drains each sent
packet must be exactly one of: delivered to a host, dropped by the switch
(with a counted reason), or still held in the switch buffer.  These are
the properties that catch lost-packet bugs in the release paths.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (BufferConfig, buffer_16, buffer_256,
                        flow_buffer_256, no_buffer)
from repro.experiments import build_testbed
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import (batched_multi_packet_flows, mixed_tcp_udp,
                              single_packet_flows)

_CONFIGS = [no_buffer(), buffer_16(), buffer_256(), flow_buffer_256()]


def _drain(testbed, horizon=3.0):
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=horizon)
    testbed.shutdown()


def _accounted(testbed) -> int:
    delivered = (len(testbed.host2.received)
                 + len(testbed.host1.received))
    dropped = testbed.switch.datapath.packets_dropped
    buffered = testbed.mechanism.packets_stored
    return delivered + dropped + buffered


@pytest.mark.parametrize("config", _CONFIGS,
                         ids=[c.label for c in _CONFIGS])
def test_every_packet_accounted_workload_a(config):
    workload = single_packet_flows(mbps(60), n_flows=80,
                                   rng=RandomStreams(20))
    testbed = build_testbed(config, workload, seed=20)
    _drain(testbed)
    assert testbed.pktgen.packets_sent == 80
    assert _accounted(testbed) == 80


@pytest.mark.parametrize("config", _CONFIGS,
                         ids=[c.label for c in _CONFIGS])
def test_every_packet_accounted_workload_b(config):
    workload = batched_multi_packet_flows(mbps(60), n_flows=10,
                                          packets_per_flow=8, batch_size=5,
                                          rng=RandomStreams(21))
    testbed = build_testbed(config, workload, seed=21)
    _drain(testbed)
    assert _accounted(testbed) == 80


def test_every_packet_accounted_mixed_traffic():
    workload = mixed_tcp_udp(mbps(60), n_tcp_flows=5, packets_per_tcp=10,
                             n_udp_flows=30, rng=RandomStreams(22))
    testbed = build_testbed(buffer_256(), workload, seed=22)
    _drain(testbed)
    assert _accounted(testbed) == 80


def test_dead_controller_conserves_via_buffer_and_ageout():
    """With no replies ever, packets end up buffered then aged out as
    counted drops — never silently vanished."""
    config = BufferConfig(mechanism="packet-granularity", capacity=64)
    workload = single_packet_flows(mbps(30), n_flows=10,
                                   rng=RandomStreams(23))
    testbed = build_testbed(config, workload, seed=23)
    testbed.channel.bind_controller(lambda m: None)
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=0.3)       # before age-out: all buffered
    assert testbed.mechanism.packets_stored == 10
    testbed.sim.run(until=3.0)       # age-out fired
    assert testbed.mechanism.packets_stored == 0
    assert testbed.switch.agent.buffer_ageout_drops == 10
    testbed.shutdown()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(mechanism=st.sampled_from(["no-buffer", "packet-granularity",
                                  "flow-granularity"]),
       capacity=st.sampled_from([2, 8, 64]),
       rate=st.integers(min_value=10, max_value=95),
       n_flows=st.integers(min_value=1, max_value=40),
       seed=st.integers(min_value=0, max_value=1000))
def test_conservation_property(mechanism, capacity, rate, n_flows, seed):
    """Random mechanism x capacity x rate x size: nothing ever vanishes."""
    config = BufferConfig(mechanism=mechanism, capacity=capacity)
    workload = single_packet_flows(mbps(rate), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    testbed = build_testbed(config, workload, seed=seed)
    _drain(testbed, horizon=2.0)
    assert _accounted(testbed) == n_flows
    # And nothing is duplicated either: host2 never sees a packet twice.
    uids = [p.uid for p in testbed.host2.received]
    assert len(uids) == len(set(uids))
