"""Tests for buffer configuration and the benefit-analysis helpers."""

from __future__ import annotations

import pytest

from repro.core import (BufferConfig, FlowGranularityBuffer, NoBuffer,
                        PacketGranularityBuffer, buffer_16, buffer_256,
                        build_headline_claims, create_mechanism,
                        crossover_rate, flow_buffer_256, no_buffer,
                        percent_increase, percent_reduction)
from repro.core.ops import NO_OPS, BufferOps


# ---------------------------------------------------------------------------
# BufferConfig / factory
# ---------------------------------------------------------------------------

def test_canonical_configs_have_paper_labels():
    assert no_buffer().label == "no-buffer"
    assert buffer_16().label == "buffer-16"
    assert buffer_256().label == "buffer-256"
    assert flow_buffer_256().label == "flow-buffer-256"


def test_uses_buffer_flag():
    assert not no_buffer().uses_buffer
    assert buffer_256().uses_buffer
    assert flow_buffer_256().uses_buffer


def test_unknown_mechanism_rejected():
    with pytest.raises(ValueError):
        BufferConfig(mechanism="quantum-buffer")


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        BufferConfig(capacity=-1)


def test_factory_builds_matching_types(sim):
    assert isinstance(create_mechanism(no_buffer(), sim), NoBuffer)
    packet_mech = create_mechanism(buffer_16(), sim)
    assert isinstance(packet_mech, PacketGranularityBuffer)
    assert packet_mech.capacity == 16
    flow_mech = create_mechanism(flow_buffer_256(), sim)
    assert isinstance(flow_mech, FlowGranularityBuffer)
    assert flow_mech.capacity == 256


def test_factory_forwards_parameters(sim):
    config = BufferConfig(mechanism="flow-granularity", capacity=32,
                          miss_send_len=64, retry_timeout=0.2,
                          max_retries=3, max_packets_per_flow=10)
    mechanism = create_mechanism(config, sim)
    assert mechanism.miss_send_len == 64
    assert mechanism.retry_timeout == 0.2
    assert mechanism.max_retries == 3
    assert mechanism.buffer.max_packets_per_flow == 10


def test_reclaim_delay_reaches_packet_buffer(sim):
    config = BufferConfig(mechanism="packet-granularity", capacity=8,
                          reclaim_delay=0.42)
    mechanism = create_mechanism(config, sim)
    assert mechanism.buffer.reclaim_delay == 0.42


# ---------------------------------------------------------------------------
# BufferOps
# ---------------------------------------------------------------------------

def test_ops_addition_and_total():
    a = BufferOps(map_lookups=1, stores=2)
    b = BufferOps(releases=3, timer_ops=1)
    combined = a + b
    assert combined.map_lookups == 1
    assert combined.stores == 2
    assert combined.releases == 3
    assert combined.total == 7
    assert NO_OPS.total == 0


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------

def test_percent_reduction_basic():
    assert percent_reduction([10, 10], [5, 5]) == pytest.approx(50.0)
    assert percent_reduction([10], [12]) == pytest.approx(-20.0)


def test_percent_increase_is_negated_reduction():
    assert percent_increase([10], [12]) == pytest.approx(20.0)


def test_percent_reduction_skips_zero_baselines():
    assert percent_reduction([0, 10], [99, 5]) == pytest.approx(50.0)


def test_percent_reduction_validation():
    with pytest.raises(ValueError):
        percent_reduction([1, 2], [1])
    with pytest.raises(ValueError):
        percent_reduction([], [])
    with pytest.raises(ValueError):
        percent_reduction([0.0], [1.0])


def test_crossover_rate_finds_first_stable_win():
    rates = [10, 20, 30, 40]
    a = [5, 5, 3, 2]
    b = [4, 4, 4, 4]
    assert crossover_rate(rates, a, b) == 30


def test_crossover_rate_none_when_never_wins():
    rates = [10, 20]
    assert crossover_rate(rates, [5, 5], [4, 4]) is None


def test_crossover_rate_requires_stability():
    rates = [10, 20, 30]
    a = [3, 9, 3]       # wins at 10, loses at 20, wins at 30
    b = [4, 4, 4]
    assert crossover_rate(rates, a, b) == 30


def test_crossover_rate_validation():
    with pytest.raises(ValueError):
        crossover_rate([1, 2], [1], [1, 2])


def test_build_headline_claims_full_input():
    series = {
        "load_up": {"no-buffer": [100.0], "buffer-256": [20.0]},
        "switch_usage": {"no-buffer": [200.0], "buffer-256": [210.0]},
        "b_buffer_avg": {"buffer-256": [20.0], "flow-buffer-256": [4.0]},
    }
    claims = build_headline_claims(series)
    by_name = {c.name: c for c in claims}
    load = by_name["control path load reduction (switch->controller)"]
    assert load.measured_value == pytest.approx(80.0)
    assert load.paper_value == 78.7
    assert load.same_direction
    switch = by_name["switch overhead increase"]
    assert switch.measured_value == pytest.approx(5.0)
    buffer_claim = by_name["buffer utilization improvement"]
    assert buffer_claim.measured_value == pytest.approx(80.0)


def test_build_headline_claims_partial_input_skips_missing():
    claims = build_headline_claims({})
    assert claims == []


def test_claim_direction_detection():
    series = {"load_up": {"no-buffer": [10.0], "buffer-256": [20.0]}}
    (claim,) = build_headline_claims(series)
    assert claim.measured_value < 0
    assert not claim.same_direction
