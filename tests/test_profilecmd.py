"""The ``profile`` and ``bench diff`` CLI subcommands."""

from __future__ import annotations

import json

from repro.experiments.cli import main as cli_main


def test_profile_command_writes_artifacts_and_prints_table(tmp_path,
                                                           capsys):
    code = cli_main(["profile", "--scenario", "fanin:2", "--flows", "40",
                     "--reps", "1", "--out", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "self-time" in captured.out
    assert "station:" in captured.out

    beats = [json.loads(line) for line in
             (tmp_path / "heartbeats.jsonl").read_text().splitlines()]
    assert beats and all(b["record"] == "heartbeat" for b in beats)
    assert all("events_scheduled" in b for b in beats)

    trace = json.loads((tmp_path / "trace.json").read_text())
    names = [e["args"]["name"] for e in trace["traceEvents"]
             if e.get("name") == "process_name"]
    assert any(name.startswith("wall-clock ") for name in names)

    profile = json.loads((tmp_path / "profile.json").read_text())
    assert profile["events"] > 0 and profile["components"]


def test_profile_command_rejects_bad_scenario(capsys):
    assert cli_main(["profile", "--scenario", "nosuch:9"]) == 2
    assert capsys.readouterr().err


def _record(schema, rate, extra=None):
    doc = {"schema": schema,
           "benchmarks": {"event_loop": {
               "units": 20000,
               "after": {"seconds": 20000 / rate,
                         "events_per_sec": rate}}}}
    doc.update(extra or {})
    return doc


def test_bench_diff_compares_v1_and_v2_records(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_record("bench-kernel/1", 1_000_000.0)))
    new.write_text(json.dumps(_record(
        "bench-kernel/2", 1_100_000.0,
        {"components": {"station:ovs-cpu": 0.4, "link": 0.1},
         "obs_overhead": {"event_loop_profiled_ratio": 1.08}})))
    code = cli_main(["bench", "diff", str(old), str(new)])
    captured = capsys.readouterr()
    assert code == 0
    assert "+10.0%" in captured.out
    assert "station:ovs-cpu" in captured.out
    assert "1.080x" in captured.out


def test_bench_diff_fail_below_gates_regressions(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_record("bench-kernel/1", 1_000_000.0)))
    new.write_text(json.dumps(_record("bench-kernel/2", 500_000.0)))
    assert cli_main(["bench", "diff", str(old), str(new)]) == 0
    capsys.readouterr()
    assert cli_main(["bench", "diff", str(old), str(new),
                     "--fail-below", "0.3"]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_bench_diff_rejects_non_bench_records(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "something-else"}))
    ok = tmp_path / "ok.json"
    ok.write_text(json.dumps(_record("bench-kernel/1", 1.0)))
    assert cli_main(["bench", "diff", str(bogus), str(ok)]) == 2
    assert "not a BENCH_kernel record" in capsys.readouterr().err
