"""Exporter round-trips: JSONL, Chrome trace_event, Prometheus text."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (MetricsRegistry, SpanRecorder, chrome_trace_events,
                       parse_prometheus, snapshot_to_prometheus,
                       spans_from_jsonl, spans_to_chrome, spans_to_jsonl,
                       validate_chrome_trace)
from repro.obs.exporters import span_from_dict, span_to_dict


def _sample_records():
    recorder = SpanRecorder()
    root = recorder.add_span("flow_setup", 0.001, 0.003, category="flow",
                             track="flow-1", flow_id=1, mechanism="buffer-16")
    recorder.add_span("switch.miss", 0.001, 0.002, category="switch",
                      track="flow-1", parent=root.span_id, flow_id=1)
    recorder.instant("buffer.admit", t=0.0015, category="switch",
                     track="flow-1", buffer_id=3)
    return recorder.records


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def test_span_dict_round_trip_preserves_every_field():
    for record in _sample_records():
        clone = span_from_dict(span_to_dict(record))
        assert clone == record


def test_jsonl_round_trip():
    records = _sample_records()
    buffer = io.StringIO()
    written = spans_to_jsonl(records, buffer, run="buffer-16 rate=20 rep=0")
    assert written == len(records)
    buffer.seek(0)
    parsed = spans_from_jsonl(buffer)
    assert parsed == records
    # run metadata rides on every line but does not disturb the round trip
    buffer.seek(0)
    assert all(json.loads(line)["run"] == "buffer-16 rate=20 rep=0"
               for line in buffer if line.strip())


def test_jsonl_parser_skips_blank_lines():
    parsed = spans_from_jsonl(io.StringIO("\n\n"))
    assert parsed == []


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def test_chrome_events_have_required_keys_and_microsecond_times():
    records = _sample_records()
    events = chrome_trace_events([("run-1", records)])
    assert validate_chrome_trace({"traceEvents": events}) == []
    complete = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    metadata = [e for e in events if e.get("ph") == "M"]
    assert len(complete) == 2 and len(instants) == 1
    root = next(e for e in complete if e["name"] == "flow_setup")
    assert root["ts"] == pytest.approx(1000.0)      # 0.001 s -> us
    assert root["dur"] == pytest.approx(2000.0)
    assert root["args"]["mechanism"] == "buffer-16"
    assert instants[0]["s"] == "t"
    # one process per group plus one thread per track
    names = {(e["name"], e["args"]["name"]) for e in metadata}
    assert ("process_name", "run-1") in names
    assert ("thread_name", "flow-1") in names


def test_chrome_groups_get_distinct_pids_and_tids_per_track():
    recorder = SpanRecorder()
    recorder.instant("a", t=0.0, track="t1")
    recorder.instant("b", t=0.0, track="t2")
    events = chrome_trace_events([("g1", recorder.records),
                                  ("g2", recorder.records)])
    pids = {e["pid"] for e in events}
    assert pids == {1, 2}
    tids_g1 = {e["tid"] for e in events
               if e["pid"] == 1 and e["ph"] != "M"}
    assert tids_g1 == {1, 2}


def test_spans_to_chrome_writes_loadable_json():
    buffer = io.StringIO()
    count = spans_to_chrome([("run-1", _sample_records())], buffer)
    payload = json.loads(buffer.getvalue())
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) == count
    assert validate_chrome_trace(payload) == []


def test_validate_chrome_trace_flags_malformed_payloads():
    assert validate_chrome_trace({}) == ["payload has no traceEvents list"]
    problems = validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "x", "ts": 0.0}]})
    assert any("missing 'pid'" in p for p in problems)
    assert any("missing 'dur'" in p for p in problems)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _scraped_registry():
    registry = MetricsRegistry()
    registry.counter("packet_ins_total", switch="ovs", run="buffer-16").inc(7)
    registry.gauge("pktbuf_peak_units").track_max(12)
    histogram = registry.histogram("setup_delay_seconds",
                                   buckets=(0.001, 0.01))
    for value in (0.0005, 0.005, 0.5):
        histogram.observe(value)
    return registry


def test_prometheus_round_trip_counters_and_gauges():
    text = snapshot_to_prometheus(_scraped_registry().snapshot())
    assert "# TYPE packet_ins_total counter" in text
    assert "# TYPE pktbuf_peak_units gauge" in text
    samples = parse_prometheus(text)
    key = (("run", "buffer-16"), ("switch", "ovs"))
    assert samples["packet_ins_total"][key] == 7
    assert samples["pktbuf_peak_units"][()] == 12


def test_prometheus_histogram_is_cumulative_with_inf_bucket():
    text = snapshot_to_prometheus(_scraped_registry().snapshot())
    samples = parse_prometheus(text)
    buckets = samples["setup_delay_seconds_bucket"]
    assert buckets[(("le", "0.001"),)] == 1
    assert buckets[(("le", "0.01"),)] == 2
    assert buckets[(("le", "+Inf"),)] == 3
    assert samples["setup_delay_seconds_count"][()] == 3
    assert samples["setup_delay_seconds_sum"][()] == pytest.approx(0.5055)


def test_prometheus_empty_snapshot_renders_empty_string():
    assert snapshot_to_prometheus(MetricsRegistry().snapshot()) == ""
    assert parse_prometheus("") == {}
