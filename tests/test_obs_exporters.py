"""Exporter round-trips: JSONL, Chrome trace_event, Prometheus text."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (MetricsRegistry, SpanRecorder, chrome_trace_events,
                       parse_prometheus, snapshot_to_prometheus,
                       spans_from_jsonl, spans_to_chrome, spans_to_jsonl,
                       validate_chrome_trace)
from repro.obs.exporters import span_from_dict, span_to_dict


def _sample_records():
    recorder = SpanRecorder()
    root = recorder.add_span("flow_setup", 0.001, 0.003, category="flow",
                             track="flow-1", flow_id=1, mechanism="buffer-16")
    recorder.add_span("switch.miss", 0.001, 0.002, category="switch",
                      track="flow-1", parent=root.span_id, flow_id=1)
    recorder.instant("buffer.admit", t=0.0015, category="switch",
                     track="flow-1", buffer_id=3)
    return recorder.records


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def test_span_dict_round_trip_preserves_every_field():
    for record in _sample_records():
        clone = span_from_dict(span_to_dict(record))
        assert clone == record


def test_jsonl_round_trip():
    records = _sample_records()
    buffer = io.StringIO()
    written = spans_to_jsonl(records, buffer, run="buffer-16 rate=20 rep=0")
    assert written == len(records)
    buffer.seek(0)
    parsed = spans_from_jsonl(buffer)
    assert parsed == records
    # run metadata rides on every line but does not disturb the round trip
    buffer.seek(0)
    assert all(json.loads(line)["run"] == "buffer-16 rate=20 rep=0"
               for line in buffer if line.strip())


def test_jsonl_parser_skips_blank_lines():
    parsed = spans_from_jsonl(io.StringIO("\n\n"))
    assert parsed == []


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def test_chrome_events_have_required_keys_and_microsecond_times():
    records = _sample_records()
    events = chrome_trace_events([("run-1", records)])
    assert validate_chrome_trace({"traceEvents": events}) == []
    complete = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    metadata = [e for e in events if e.get("ph") == "M"]
    assert len(complete) == 2 and len(instants) == 1
    root = next(e for e in complete if e["name"] == "flow_setup")
    assert root["ts"] == pytest.approx(1000.0)      # 0.001 s -> us
    assert root["dur"] == pytest.approx(2000.0)
    assert root["args"]["mechanism"] == "buffer-16"
    assert instants[0]["s"] == "t"
    # one process per group plus one thread per track
    names = {(e["name"], e["args"]["name"]) for e in metadata}
    assert ("process_name", "run-1") in names
    assert ("thread_name", "flow-1") in names


def test_chrome_groups_get_distinct_pids_and_tids_per_track():
    recorder = SpanRecorder()
    recorder.instant("a", t=0.0, track="t1")
    recorder.instant("b", t=0.0, track="t2")
    events = chrome_trace_events([("g1", recorder.records),
                                  ("g2", recorder.records)])
    pids = {e["pid"] for e in events}
    assert pids == {1, 2}
    tids_g1 = {e["tid"] for e in events
               if e["pid"] == 1 and e["ph"] != "M"}
    assert tids_g1 == {1, 2}


def test_spans_to_chrome_writes_loadable_json():
    buffer = io.StringIO()
    count = spans_to_chrome([("run-1", _sample_records())], buffer)
    payload = json.loads(buffer.getvalue())
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) == count
    assert validate_chrome_trace(payload) == []


def test_validate_chrome_trace_flags_malformed_payloads():
    assert validate_chrome_trace({}) == ["payload has no traceEvents list"]
    problems = validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "x", "ts": 0.0}]})
    assert any("missing 'pid'" in p for p in problems)
    assert any("missing 'dur'" in p for p in problems)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _scraped_registry():
    registry = MetricsRegistry()
    registry.counter("packet_ins_total", switch="ovs", run="buffer-16").inc(7)
    registry.gauge("pktbuf_peak_units").track_max(12)
    histogram = registry.histogram("setup_delay_seconds",
                                   buckets=(0.001, 0.01))
    for value in (0.0005, 0.005, 0.5):
        histogram.observe(value)
    return registry


def test_prometheus_round_trip_counters_and_gauges():
    text = snapshot_to_prometheus(_scraped_registry().snapshot())
    assert "# TYPE packet_ins_total counter" in text
    assert "# TYPE pktbuf_peak_units gauge" in text
    samples = parse_prometheus(text)
    key = (("run", "buffer-16"), ("switch", "ovs"))
    assert samples["packet_ins_total"][key] == 7
    assert samples["pktbuf_peak_units"][()] == 12


def test_prometheus_histogram_is_cumulative_with_inf_bucket():
    text = snapshot_to_prometheus(_scraped_registry().snapshot())
    samples = parse_prometheus(text)
    buckets = samples["setup_delay_seconds_bucket"]
    assert buckets[(("le", "0.001"),)] == 1
    assert buckets[(("le", "0.01"),)] == 2
    assert buckets[(("le", "+Inf"),)] == 3
    assert samples["setup_delay_seconds_count"][()] == 3
    assert samples["setup_delay_seconds_sum"][()] == pytest.approx(0.5055)


def test_prometheus_empty_snapshot_renders_empty_string():
    assert snapshot_to_prometheus(MetricsRegistry().snapshot()) == ""
    assert parse_prometheus("") == {}


# ---------------------------------------------------------------------------
# Prometheus conformance: label escaping, HELP/TYPE uniqueness
# ---------------------------------------------------------------------------

def test_label_values_escape_backslash_quote_and_newline():
    from repro.obs import escape_label_value
    assert escape_label_value('a\\b') == 'a\\\\b'
    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value('line1\nline2') == 'line1\\nline2'


def test_prometheus_round_trips_gnarly_label_values():
    registry = MetricsRegistry()
    gnarly = 'we"ird\\lab,el\nnl'
    registry.counter("events_total", run=gnarly, plain="with spaces").inc(3)
    text = snapshot_to_prometheus(registry.snapshot())
    assert "\n\n" not in text.strip()  # escaping keeps one sample per line
    samples = parse_prometheus(text)
    key = (("plain", "with spaces"), ("run", gnarly))
    assert samples["events_total"][key] == 3


def test_help_and_type_emitted_exactly_once_per_family():
    registry = MetricsRegistry()
    registry.counter("packet_ins_total", run="a").inc(1)
    registry.counter("packet_ins_total", run="b").inc(2)
    histogram_a = registry.histogram("delay_seconds", run="a",
                                     buckets=(0.01,))
    histogram_b = registry.histogram("delay_seconds", run="b",
                                     buckets=(0.01,))
    histogram_a.observe(0.001)
    histogram_b.observe(0.001)
    text = snapshot_to_prometheus(registry.snapshot())
    lines = text.splitlines()
    assert sum(1 for l in lines
               if l.startswith("# TYPE packet_ins_total ")) == 1
    assert sum(1 for l in lines
               if l.startswith("# HELP packet_ins_total ")) == 1
    assert sum(1 for l in lines
               if l.startswith("# TYPE delay_seconds ")) == 1
    # HELP precedes TYPE, which precedes the samples (text-format order).
    help_at = lines.index(next(l for l in lines
                               if l.startswith("# HELP packet_ins_total")))
    type_at = lines.index(next(l for l in lines
                               if l.startswith("# TYPE packet_ins_total")))
    assert help_at < type_at


def test_parse_prometheus_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus("not a metric line at all }{")


# ---------------------------------------------------------------------------
# Crash-safe artifact writing
# ---------------------------------------------------------------------------

def test_open_artifact_atomic_success(tmp_path):
    from repro.obs import open_artifact
    target = tmp_path / "out.json"
    with open_artifact(target) as handle:
        handle.write('{"ok": true}')
    assert json.loads(target.read_text()) == {"ok": True}
    assert not target.with_suffix(".json.tmp").exists()


def test_open_artifact_jsonl_flushes_truncation_trailer(tmp_path):
    from repro.obs import open_artifact
    target = tmp_path / "beats.jsonl"
    with pytest.raises(RuntimeError, match="mid-export"):
        with open_artifact(target, jsonl=True) as handle:
            handle.write('{"beat": 0}\n')
            raise RuntimeError("mid-export")
    lines = [json.loads(line) for line in
             target.read_text().splitlines()]
    assert lines[0] == {"beat": 0}
    assert lines[-1]["truncated"] is True
    assert "mid-export" in lines[-1]["error"]
    assert list(tmp_path.iterdir()) == [target]


def test_open_artifact_single_doc_failure_keeps_old_file(tmp_path):
    from repro.obs import open_artifact
    target = tmp_path / "trace.json"
    target.write_text('{"old": 1}')
    with pytest.raises(RuntimeError):
        with open_artifact(target) as handle:
            handle.write('{"new": ')
            raise RuntimeError("half-written")
    assert json.loads(target.read_text()) == {"old": 1}
    assert list(tmp_path.iterdir()) == [target]


# ---------------------------------------------------------------------------
# Wall-clock profile tracks
# ---------------------------------------------------------------------------

def _profiled_report():
    from repro.obs import ComponentProfiler
    from repro.simkit import Simulator
    sim = Simulator()
    profiler = ComponentProfiler(stride=1)
    sim.attach_profiler(profiler)
    counter = {"n": 0}

    def tick():
        counter["n"] += 1
        if counter["n"] < 600:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return profiler.report()


def test_profile_trace_events_emit_wall_clock_process():
    from repro.obs import profile_trace_events
    events = profile_trace_events([("buffer-16 rate=20 rep=0",
                                    _profiled_report())])
    assert validate_chrome_trace({"traceEvents": events}) == []
    process_names = [e["args"]["name"] for e in events
                     if e.get("name") == "process_name"]
    assert process_names == ["wall-clock buffer-16 rate=20 rep=0"]
    slices = [e for e in events if e.get("ph") == "X"]
    assert slices and all(e["dur"] >= 0 for e in slices)


def test_profile_trace_events_carry_sim_rate_counter():
    from repro.obs import profile_trace_events
    events = profile_trace_events([("run", _profiled_report())])
    counters = [e for e in events if e.get("ph") == "C"]
    assert counters, "timeline with >=2 points must yield a counter track"
    assert all(e["name"] == "sim_rate" for e in counters)
