"""Failure-injection tests: silent controllers, buffer overflow, errors.

The mechanisms must degrade gracefully — exactly the situations
Algorithm 1's timeout (line 12-13) and the OFP_NO_BUFFER fallback exist
for.
"""

from __future__ import annotations

import pytest

from repro.core import (BufferConfig, FlowGranularityBuffer, buffer_256,
                        flow_buffer_256)
from repro.experiments import build_testbed
from repro.openflow import ErrorMsg, OutputAction, PacketIn, PacketOut
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


def _testbed(config, n_flows=10, rate=20, seed=3):
    workload = single_packet_flows(mbps(rate), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    return build_testbed(config, workload, seed=seed)


class _MuteController:
    """Swallows every packet_in (simulates a hung controller app)."""

    def __init__(self, channel):
        self.received = []
        channel.bind_controller(self.received.append)


def test_silent_controller_triggers_flow_granularity_retries():
    config = BufferConfig(mechanism="flow-granularity", capacity=64,
                          retry_timeout=0.05, max_retries=3)
    testbed = _testbed(config, n_flows=4)
    mute = _MuteController(testbed.channel)   # replaces the real handler
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=1.0)
    packet_ins = [m for m in mute.received if isinstance(m, PacketIn)]
    retries = [m for m in packet_ins if m.is_retry]
    # 4 initial requests + 3 retries each.
    assert len(packet_ins) == 4 + 12
    assert len(retries) == 12
    testbed.shutdown()


def test_silent_controller_eventually_frees_buffer_units():
    config = BufferConfig(mechanism="flow-granularity", capacity=64,
                          retry_timeout=0.02, max_retries=2)
    testbed = _testbed(config, n_flows=4)
    _MuteController(testbed.channel)
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=2.0)
    mechanism = testbed.mechanism
    assert isinstance(mechanism, FlowGranularityBuffer)
    assert mechanism.flows_abandoned == 4
    assert mechanism.units_in_use == 0        # nothing pinned forever
    testbed.shutdown()


def test_packet_buffer_overflow_falls_back_to_full_frames():
    config = BufferConfig(mechanism="packet-granularity", capacity=2,
                          reclaim_delay=10.0)   # units never come back
    testbed = _testbed(config, n_flows=8, rate=80)
    received = []
    testbed.channel.bind_controller(received.append)
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=1.0)
    packet_ins = [m for m in received if isinstance(m, PacketIn)]
    assert len(packet_ins) == 8
    buffered = [m for m in packet_ins if m.is_buffered]
    fallback = [m for m in packet_ins if not m.is_buffered]
    assert len(buffered) == 2
    assert len(fallback) == 6
    assert all(m.data_len == m.packet.wire_len for m in fallback)
    testbed.shutdown()


def test_stale_packet_out_yields_error_not_crash():
    testbed = _testbed(buffer_256(), n_flows=2)
    received = []
    testbed.channel.bind_controller(received.append)
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=0.5)
    (first_packet_in, *_rest) = [m for m in received
                                 if isinstance(m, PacketIn)]
    # Release once (valid), then replay the same packet_out (stale).
    for _ in range(2):
        testbed.channel.send_to_switch(
            PacketOut(actions=(OutputAction(2),),
                      buffer_id=first_packet_in.buffer_id, in_port=1))
        testbed.sim.run(until=testbed.sim.now + 0.2)
    errors = [m for m in received if isinstance(m, ErrorMsg)]
    assert len(errors) == 1
    assert testbed.switch.agent.errors_sent == 1
    testbed.shutdown()


def test_flow_granularity_survives_duplicate_release():
    config = BufferConfig(mechanism="flow-granularity", capacity=256,
                          retry_timeout=10.0)   # keep flows pending
    testbed = _testbed(config, n_flows=2)
    received = []
    testbed.channel.bind_controller(received.append)
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=0.5)
    packet_ins = [m for m in received if isinstance(m, PacketIn)]
    for message in packet_ins:
        for _ in range(2):   # duplicate packet_outs for every flow
            testbed.channel.send_to_switch(
                PacketOut(actions=(OutputAction(2),),
                          buffer_id=message.buffer_id, in_port=1))
    testbed.sim.run(until=testbed.sim.now + 0.5)
    # One delivery per flow despite duplicates; duplicates become errors.
    assert len(testbed.host2.received) == 2
    assert testbed.switch.agent.errors_sent == 2
    testbed.shutdown()


def test_unknown_destination_is_flooded_not_dropped():
    """Traffic to an unprovisioned destination still reaches hosts."""
    workload = single_packet_flows(mbps(20), n_flows=3,
                                   rng=RandomStreams(5))
    for _, packet in workload.entries:
        # Point every packet at addresses the locator doesn't know.
        object.__setattr__(packet.ip, "dst_ip", "10.99.99.99")
        object.__setattr__(packet.eth, "dst_mac", "00:00:00:00:00:99")
    testbed = build_testbed(buffer_256(), workload, seed=5)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    assert testbed.controller.app.floods == 3
    # Flood goes out every port except the ingress -> host2 sees them.
    assert len(testbed.host2.received) == 3
    # No rule is installed for floods.
    assert len(testbed.switch.flow_table) == 0
    testbed.shutdown()


def test_flow_table_pressure_evicts_but_keeps_forwarding():
    from repro.experiments import TestbedCalibration
    from repro.switchsim import SwitchConfig
    from repro.controllersim import ControllerConfig
    calibration = TestbedCalibration(
        switch=SwitchConfig(flow_table_capacity=4),
        controller=ControllerConfig())
    workload = single_packet_flows(mbps(20), n_flows=20,
                                   rng=RandomStreams(6))
    testbed = build_testbed(buffer_256(), workload, calibration=calibration,
                            seed=6)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=2.0)
    assert len(testbed.host2.received) == 20
    assert len(testbed.switch.flow_table) <= 4
    assert testbed.switch.flow_table.evictions >= 16
    testbed.shutdown()
