"""Observation on multi-switch paths: per-datapath spans and labels.

Satellite acceptance for the scenario refactor: on a ``line:N`` run one
``flow_setup`` span tree exists per (flow, switch), every emission
carries the right switch/datapath labels and a switch-scoped track, the
five-stage tiling (the paper's §III.B decomposition) holds per switch,
and the shared metrics registry keeps per-switch counters apart.
"""

from __future__ import annotations

import pytest

from repro.core import buffer_16, no_buffer
from repro.experiments import run_once
from repro.obs import ObsConfig, RunObserver, validate_nesting
from repro.obs.flowtrace import (SPAN_CHANNEL_DOWN, SPAN_CHANNEL_UP,
                                 SPAN_CONTROLLER_APP, SPAN_FLOW_SETUP,
                                 SPAN_SWITCH_APPLY, SPAN_SWITCH_MISS)
from repro.obs.spans import KIND_SPAN
from repro.scenarios import line_scenario
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows

_CHILD_ORDER = (SPAN_SWITCH_MISS, SPAN_CHANNEL_UP, SPAN_CONTROLLER_APP,
                SPAN_CHANNEL_DOWN, SPAN_SWITCH_APPLY)

_N_FLOWS = 12


def _observed_line_run(n_switches=2, config=None, seed=13):
    workload = single_packet_flows(mbps(20), n_flows=_N_FLOWS,
                                   rng=RandomStreams(seed))
    config = config if config is not None else buffer_16()
    observer = RunObserver(ObsConfig(trace_sample=1), label=config.label)
    metrics = run_once(config, workload, seed=seed,
                       scenario=line_scenario(n_switches), obs=observer)
    return metrics, observer.observation


def _span_tree(spans):
    roots = [s for s in spans if s.name == SPAN_FLOW_SETUP]
    children = {}
    for span in spans:
        if span.kind == KIND_SPAN and span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return roots, children


def test_one_setup_tree_per_flow_per_switch():
    metrics, observation = _observed_line_run(n_switches=2)
    assert metrics.completed_flows == _N_FLOWS
    roots, _ = _span_tree(observation.spans)
    assert len(roots) == observation.flows_traced == 2 * _N_FLOWS

    by_switch = {}
    for root in roots:
        by_switch.setdefault(root.attrs["switch"], []).append(root)
    assert sorted(by_switch) == ["s1", "s2"]
    assert len(by_switch["s1"]) == len(by_switch["s2"]) == _N_FLOWS
    # each switch traces every flow exactly once
    for name, group in by_switch.items():
        assert sorted(r.attrs["flow_id"] for r in group) \
            == sorted(range(_N_FLOWS))


def test_datapath_labels_and_scoped_tracks():
    _, observation = _observed_line_run(n_switches=2)
    datapath_of = {"s1": 1, "s2": 2}
    roots, children = _span_tree(observation.spans)
    for root in roots:
        switch = root.attrs["switch"]
        assert root.attrs["datapath"] == datapath_of[switch]
        assert root.track == f"{switch}/flow-{root.attrs['flow_id']}"
        # every child rides the same lane with the same datapath label
        for kid in children[root.span_id]:
            assert kid.attrs["datapath"] == datapath_of[switch]
            assert kid.track == root.track


def test_decomposition_identity_holds_per_switch():
    """§III.B: the five stages exactly tile flow setup, on every hop."""
    _, observation = _observed_line_run(n_switches=2)
    assert validate_nesting(observation.spans) == []
    roots, children = _span_tree(observation.spans)
    assert roots, "no flow_setup spans traced"
    for root in roots:
        kids = children[root.span_id]
        assert [k.name for k in kids] == list(_CHILD_ORDER)
        assert kids[0].start == root.start
        assert kids[-1].end == root.end
        for left, right in zip(kids, kids[1:]):
            assert right.start == left.end
        assert sum(k.duration for k in kids) \
            == pytest.approx(root.duration, rel=1e-9, abs=1e-12)


def test_merged_counters_are_labelled_per_switch():
    _, observation = _observed_line_run(n_switches=2, config=buffer_16())
    counters = observation.metrics.counters

    def value(name, switch):
        key = (name, (("run", "buffer-16"), ("switch", switch)))
        assert key in counters, f"missing {key}"
        return counters[key]

    for switch in ("s1", "s2"):
        assert value("switch_packet_ins_sent_total", switch) == _N_FLOWS
        assert value("switch_flow_mods_applied_total", switch) >= _N_FLOWS
    # the per-switch buffer metrics stayed apart too (labelled at
    # adoption into the shared registry)
    buffered = [key for key in counters
                if key[0] == "pktbuf_buffered_total"]
    assert {dict(labels)["switch"] for _, labels in buffered} \
        == {"s1", "s2"}


def test_incomplete_run_bumps_structured_counter():
    """Exhausting the extension budget leaves a machine-readable mark."""
    observer = RunObserver(ObsConfig(trace=False))
    workload = single_packet_flows(mbps(95), n_flows=100,
                                   rng=RandomStreams(5))
    with pytest.warns(RuntimeWarning, match="incomplete"):
        run_once(no_buffer(), workload, seed=5, drain=0.0, max_extends=0,
                 obs=observer)
    counters = observer.observation.metrics.counters
    assert counters[("run.incomplete_extends_exhausted", ())] == 1


def test_complete_run_leaves_counter_unset():
    _, observation = _observed_line_run(n_switches=2)
    assert not any(name == "run.incomplete_extends_exhausted"
                   for name, _ in observation.metrics.counters)
