"""Public-API integrity: exports resolve, __all__ is honest, docs exist."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

_SUBPACKAGES = ["repro.simkit", "repro.packets", "repro.openflow",
                "repro.netsim", "repro.switchsim", "repro.controllersim",
                "repro.trafficgen", "repro.core", "repro.metrics",
                "repro.scenarios", "repro.experiments", "repro.parallel"]


@pytest.mark.parametrize("name", _SUBPACKAGES)
def test_subpackage_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", _SUBPACKAGES)
def test_subpackage_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip()


def test_top_level_exports_resolve():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol)


def test_version_is_set():
    assert repro.__version__


@pytest.mark.parametrize("name", _SUBPACKAGES)
def test_public_classes_and_functions_are_documented(name):
    """Every public callable exported by a subpackage has a docstring."""
    module = importlib.import_module(name)
    undocumented = []
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(symbol)
    assert undocumented == []


def test_public_classes_have_documented_public_methods():
    """Spot-check the core API surface: public methods carry docstrings."""
    from repro.core import (BufferMechanism, FlowGranularityBuffer,
                            PacketGranularityBuffer)
    from repro.openflow import FlowTable, PacketBuffer
    from repro.simkit import ServiceStation, Simulator
    for cls in (BufferMechanism, FlowGranularityBuffer,
                PacketGranularityBuffer, FlowTable, PacketBuffer,
                ServiceStation, Simulator):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert member.__doc__, f"{cls.__name__}.{name} undocumented"


def test_workload_schedule_on_sends_through_host():
    from repro.netsim import Host, Link
    from repro.simkit import RandomStreams, Simulator, mbps
    from repro.trafficgen import single_packet_flows
    sim = Simulator()
    host = Host(sim, "h", "00:00:00:00:00:01", "10.0.0.1")
    link = Link(sim, "l", mbps(100))
    sent = []
    link.connect(sent.append)
    host.attach(link)
    workload = single_packet_flows(mbps(100), n_flows=5,
                                   rng=RandomStreams(70))
    workload.schedule_on(sim, host, start=0.25)
    sim.run()
    assert len(sent) == 5
    assert all(p.created_at >= 0.25 for p in sent)
