"""Wall-clock component profiler: attribution, determinism, overhead."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import buffer_16
from repro.experiments import sweep, workload_a_factory
from repro.obs import (ComponentProfiler, ObsCollector, ObsConfig,
                       ProfileReport, component_of)
from repro.simkit import ServiceStation, Simulator

_RATES = (20.0,)
_REPS = 2
_FLOWS = 20


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------

def test_component_of_prefers_profile_component_override():
    sim = Simulator()
    station = ServiceStation(sim, "ovs-cpu", servers=1)
    assert component_of(station._finish) == "station:ovs-cpu"


def test_component_of_falls_back_to_module_for_free_functions():
    def local():
        pass
    assert component_of(local) == "test_obs_profile"


def test_component_of_uses_owner_class_module_for_bound_methods():
    class Owner:
        def cb(self):
            pass
    assert component_of(Owner().cb) == "test_obs_profile"


# ---------------------------------------------------------------------------
# Profiler mechanics
# ---------------------------------------------------------------------------

def _timer_chain(sim, n):
    counter = {"n": 0}

    def tick():
        counter["n"] += 1
        if counter["n"] < n:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter["n"]


def test_profiler_samples_every_stride_th_event():
    sim = Simulator()
    profiler = ComponentProfiler(stride=4)
    sim.attach_profiler(profiler)
    assert _timer_chain(sim, 100) == 100
    report = profiler.report()
    assert report.events == 100
    assert report.runs == 1
    total_sampled = sum(stat.sampled_calls
                        for stat in report.components.values())
    assert total_sampled == 100 // 4
    # Estimated totals scale the samples back up by the stride.
    assert sum(stat.est_calls(report.stride)
               for stat in report.components.values()) == 100


def test_profiler_attach_detach_round_trip():
    sim = Simulator()
    profiler = ComponentProfiler()
    sim.attach_profiler(profiler)
    assert sim.profiler is profiler
    assert sim.detach_profiler() is profiler
    assert sim.profiler is None
    with pytest.raises(ValueError):
        sim.attach_profiler(None)


def test_profiled_run_executes_identical_event_sequence():
    """The regression pin: profiling must not reorder or drop events.

    Two identical simulations — one profiled, one not — must expose the
    same clock, event count and callback order (the kernel-equivalence
    golden for the profiled loop).
    """
    def run(profiled):
        sim = Simulator()
        if profiled:
            sim.attach_profiler(ComponentProfiler(stride=3))
        order = []
        for i in range(50):
            delay = (i % 7) * 0.0005
            sim.schedule(delay, order.append, (i, delay))
        sim.run()
        return sim.now, sim.events_executed, order

    assert run(False) == run(True)


def test_profiled_run_with_until_matches_plain_run():
    def run(profiled):
        sim = Simulator()
        if profiled:
            sim.attach_profiler(ComponentProfiler(stride=2))
        seen = []
        for i in range(20):
            sim.schedule(i * 0.01, seen.append, i)
        sim.run(until=0.095)
        return sim.now, seen

    assert run(False) == run(True)


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------

def test_report_merge_requires_matching_stride():
    a = ProfileReport(stride=16)
    b = ProfileReport(stride=8)
    with pytest.raises(ValueError):
        a.merge(b)


def test_report_round_trips_through_dict():
    sim = Simulator()
    profiler = ComponentProfiler(stride=2)
    sim.attach_profiler(profiler)
    _timer_chain(sim, 40)
    report = profiler.report()
    doc = report.to_dict()
    assert doc["events"] == 40
    assert doc["stride"] == 2
    assert set(doc["components"]) == set(report.components)


def test_format_table_lists_top_components():
    sim = Simulator()
    profiler = ComponentProfiler(stride=2)
    sim.attach_profiler(profiler)
    _timer_chain(sim, 40)
    table = profiler.report().format_table()
    assert "self-time" in table
    assert "test_obs_profile" in table


# ---------------------------------------------------------------------------
# End to end: observed sweeps
# ---------------------------------------------------------------------------

def _profiled_sweep(workers=1):
    obs = ObsCollector(ObsConfig(profile=True))
    result = sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
                   _RATES, _REPS, base_seed=1, obs=obs,
                   workers=(workers if workers > 1 else None))
    return result, obs


def test_profiled_sweep_attributes_testbed_components():
    _, obs = _profiled_sweep()
    profile = obs.merged_profile()
    assert profile is not None
    assert profile.runs == _REPS
    names = set(profile.components)
    assert any(name.startswith("station:") for name in names)
    assert "controller" in names
    assert "1 run(s) profiled" not in obs.summary()  # merged: 2 runs


def test_profiling_does_not_perturb_results():
    plain = sweep(buffer_16(), workload_a_factory(n_flows=_FLOWS),
                  _RATES, _REPS, base_seed=1)
    profiled, _ = _profiled_sweep()
    assert len(plain.rows) == len(profiled.rows)
    for row_a, row_b in zip(plain.rows, profiled.rows):
        assert dataclasses.asdict(row_a) == dataclasses.asdict(row_b)


def test_parallel_profile_summary_matches_serial():
    """Stride sampling is keyed to event indices, so serial and 2-worker
    sweeps must merge to field-identical deterministic summaries."""
    _, serial_obs = _profiled_sweep(workers=1)
    _, parallel_obs = _profiled_sweep(workers=2)
    assert serial_obs.merged_profile().deterministic_summary() \
        == parallel_obs.merged_profile().deterministic_summary()
