"""Tests for links, hosts and topology."""

from __future__ import annotations

import pytest

from repro.netsim import DuplexLink, Host, Link, Topology
from repro.packets import udp_packet
from repro.simkit import mbps, usec


def _packet(frame_len=1000):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      "10.0.0.1", "10.0.0.2", 1, 2, frame_len=frame_len)


# ---------------------------------------------------------------------------
# Link
# ---------------------------------------------------------------------------

def test_link_delivers_after_tx_plus_propagation(sim):
    link = Link(sim, "l", bandwidth_bps=mbps(100),
                propagation_delay=usec(5))
    arrivals = []
    link.connect(lambda item: arrivals.append((item, sim.now)))
    link.send("frame", 1000)      # 80 us serialization + 5 us propagation
    sim.run()
    assert arrivals == [("frame", pytest.approx(usec(85)))]


def test_link_serializes_fifo(sim):
    link = Link(sim, "l", bandwidth_bps=mbps(100), propagation_delay=0.0)
    arrivals = []
    link.connect(lambda item: arrivals.append((item, sim.now)))
    link.send("a", 1000)
    link.send("b", 1000)
    sim.run()
    assert arrivals[0] == ("a", pytest.approx(usec(80)))
    assert arrivals[1] == ("b", pytest.approx(usec(160)))


def test_link_counts_bytes_and_items(sim):
    link = Link(sim, "l", bandwidth_bps=mbps(10))
    link.connect(lambda item: None)
    link.send("x", 500)
    link.send("y", 700)
    assert link.bytes_sent == 1200
    assert link.items_sent == 2
    sim.run()


def test_link_taps_observe_transmissions(sim):
    link = Link(sim, "l", bandwidth_bps=mbps(10))
    link.connect(lambda item: None)
    seen = []
    link.add_tap(lambda t, item, size: seen.append((t, item, size)))
    link.send("x", 500)
    assert seen == [(0.0, "x", 500)]
    sim.run()


def test_link_requires_receiver(sim):
    link = Link(sim, "l", bandwidth_bps=mbps(10))
    with pytest.raises(RuntimeError):
        link.send("x", 100)


def test_link_validation(sim):
    with pytest.raises(ValueError):
        Link(sim, "l", bandwidth_bps=0)
    with pytest.raises(ValueError):
        Link(sim, "l", bandwidth_bps=1, propagation_delay=-1)
    link = Link(sim, "l", bandwidth_bps=mbps(10))
    link.connect(lambda item: None)
    with pytest.raises(ValueError):
        link.send("x", 0)


def test_link_utilization_and_reset(sim):
    link = Link(sim, "l", bandwidth_bps=mbps(8))   # 1 byte per microsecond
    link.connect(lambda item: None)
    link.send("x", 1_000_000)                      # 1 second of tx
    sim.run(until=2.0)
    assert link.utilization_percent() == pytest.approx(50.0)
    link.reset_accounting()
    assert link.bytes_sent == 0


def test_duplex_link_directions_are_independent(sim):
    cable = DuplexLink(sim, "cable", bandwidth_bps=mbps(100))
    forward, reverse = [], []
    cable.connect(forward.append, reverse.append)
    cable.forward.send("f", 100)
    cable.reverse.send("r", 100)
    sim.run()
    assert forward == ["f"]
    assert reverse == ["r"]


# ---------------------------------------------------------------------------
# Host
# ---------------------------------------------------------------------------

def test_host_send_stamps_created_at(sim):
    host = Host(sim, "h", "00:00:00:00:00:01", "10.0.0.1")
    link = Link(sim, "l", bandwidth_bps=mbps(100))
    link.connect(lambda item: None)
    host.attach(link)
    packet = _packet()
    sim.schedule(1.0, host.send, packet)
    sim.run()
    assert packet.created_at == 1.0
    assert host.packets_sent == 1


def test_host_receive_records_and_hooks(sim):
    host = Host(sim, "h", "00:00:00:00:00:02", "10.0.0.2")
    seen = []
    host.add_receive_hook(lambda t, p: seen.append((t, p.uid)))
    packet = _packet()
    host.receive(packet)
    assert host.received == [packet]
    assert host.bytes_received == packet.wire_len
    assert seen == [(0.0, packet.uid)]


def test_host_send_unattached_raises(sim):
    host = Host(sim, "h", "00:00:00:00:00:01", "10.0.0.1")
    with pytest.raises(RuntimeError):
        host.send(_packet())


def test_host_reset_accounting(sim):
    host = Host(sim, "h", "00:00:00:00:00:02", "10.0.0.2")
    host.receive(_packet())
    host.reset_accounting()
    assert host.received == []
    assert host.bytes_received == 0


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------

def test_topology_registers_and_looks_up_nodes(sim):
    topo = Topology(sim)
    host = topo.add_node("h1", Host(sim, "h1", "00:00:00:00:00:01",
                                    "10.0.0.1"))
    assert topo.node("h1") is host
    assert "h1" in topo
    assert "h2" not in topo


def test_topology_duplicate_node_rejected(sim):
    topo = Topology(sim)
    topo.add_node("h1", object())
    with pytest.raises(ValueError):
        topo.add_node("h1", object())


def test_topology_duplicate_node_error_names_the_key(sim):
    topo = Topology(sim)
    topo.add_node("h1", object())
    with pytest.raises(ValueError, match="'h1' already exists"):
        topo.add_node("h1", object())


def test_topology_duplicate_cable_error_names_both_endpoints(sim):
    topo = Topology(sim)
    topo.add_node("a", object())
    topo.add_node("b", object())
    topo.add_cable("a", "b", mbps(100))
    with pytest.raises(ValueError, match="'b' and 'a' already exists"):
        topo.add_cable("b", "a", mbps(100))


def test_topology_len_and_node_iteration(sim):
    topo = Topology(sim)
    assert len(topo) == 0
    objects = {"h1": object(), "h2": object(), "s1": None}
    for name, node in objects.items():
        topo.add_node(name, node)
    assert len(topo) == 3                       # placeholders count too
    assert dict(topo.nodes()) == objects


def test_topology_unknown_node_lookup_raises(sim):
    topo = Topology(sim)
    with pytest.raises(KeyError):
        topo.node("ghost")


def test_topology_cable_requires_registered_nodes(sim):
    topo = Topology(sim)
    topo.add_node("a", object())
    with pytest.raises(KeyError):
        topo.add_cable("a", "b", mbps(100))


def test_topology_cable_order_insensitive_lookup(sim):
    topo = Topology(sim)
    topo.add_node("a", object())
    topo.add_node("b", object())
    cable = topo.add_cable("a", "b", mbps(100))
    assert topo.cable("b", "a") is cable
    with pytest.raises(ValueError):
        topo.add_cable("b", "a", mbps(100))


def test_topology_replace_node(sim):
    topo = Topology(sim)
    topo.add_node("x", None)
    replacement = object()
    topo.replace_node("x", replacement)
    assert topo.node("x") is replacement
    with pytest.raises(KeyError):
        topo.replace_node("ghost", object())
