"""Tests for the management-plane additions: SetConfig/GetConfig,
FlowRemoved notifications, flow statistics, and buffer age-out."""

from __future__ import annotations

import pytest

from repro.controllersim import ControllerConfig
from repro.core import (BufferConfig, buffer_256, flow_buffer_256)
from repro.experiments import (TestbedCalibration, build_testbed, run_once)
from repro.openflow import (FlowRemoved, FlowStatsReply, GetConfigReply,
                            GetConfigRequest, Match, PacketIn, SetConfig)
from repro.simkit import RandomStreams, mbps
from repro.switchsim import SwitchConfig
from repro.trafficgen import single_packet_flows


def _live_testbed(config=None, n_flows=5, rate=20, seed=12,
                  calibration=None, run_until=1.0):
    workload = single_packet_flows(mbps(rate), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    testbed = build_testbed(config or buffer_256(), workload, seed=seed,
                            calibration=calibration)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=run_until)
    return testbed


# ---------------------------------------------------------------------------
# SetConfig / GetConfig
# ---------------------------------------------------------------------------

def test_set_config_changes_miss_send_len():
    testbed = _live_testbed(n_flows=0 or 1)
    testbed.controller.set_miss_send_len(64)
    testbed.sim.run(until=testbed.sim.now + 0.1)
    assert testbed.mechanism.miss_send_len == 64
    testbed.shutdown()


def test_set_config_affects_subsequent_packet_ins():
    workload = single_packet_flows(mbps(20), n_flows=4,
                                   rng=RandomStreams(13))
    testbed = build_testbed(buffer_256(), workload, seed=13)
    received = []
    testbed.channel.bind_controller(received.append)
    testbed.channel.send_to_switch(SetConfig(miss_send_len=60))
    testbed.pktgen.start(at=0.05)
    testbed.sim.run(until=1.0)
    packet_ins = [m for m in received if isinstance(m, PacketIn)]
    assert packet_ins and all(m.data_len == 60 for m in packet_ins)
    testbed.shutdown()


def test_get_config_round_trip():
    testbed = _live_testbed()
    replies = []
    testbed.controller.events.on  # (controller keeps config replies internal)
    # Observe at the channel level instead.
    original_handler = testbed.controller.handle_message
    testbed.channel.bind_controller(
        lambda m: (replies.append(m) if isinstance(m, GetConfigReply)
                   else original_handler(m, testbed.channel, 1)))
    request = GetConfigRequest()
    testbed.channel.send_to_switch(request)
    testbed.sim.run(until=testbed.sim.now + 0.1)
    (reply,) = replies
    assert reply.miss_send_len == 128
    assert reply.in_reply_to == request.xid
    testbed.shutdown()


def test_set_config_validation():
    with pytest.raises(ValueError):
        SetConfig(miss_send_len=-1)


# ---------------------------------------------------------------------------
# FlowRemoved
# ---------------------------------------------------------------------------

def test_flow_removed_sent_on_idle_expiry():
    calibration = TestbedCalibration(
        switch=SwitchConfig(),
        controller=ControllerConfig(flow_idle_timeout=0.2))
    # Ask the app to install rules that announce their death.
    testbed = _live_testbed(n_flows=3, calibration=calibration,
                            run_until=0.1)
    # Patch is unnecessary: install our own flagged rule directly.
    from repro.openflow import FlowMod, OutputAction
    testbed.channel.send_to_switch(FlowMod(
        match=Match(ip_src="10.50.0.1"), actions=(OutputAction(2),),
        idle_timeout=0.2, send_flow_removed=True))
    removed = []
    testbed.controller.events.on(
        "flow_removed", lambda t, m, dpid: removed.append((m, dpid)))
    testbed.sim.run(until=2.0)
    assert len(removed) == 1
    message, dpid = removed[0]
    assert dpid == 1
    assert message.reason == 0              # idle
    assert testbed.controller.flow_removed_received == 1
    assert testbed.switch.agent.flow_removed_sent == 1
    testbed.shutdown()


def test_flow_removed_reports_hard_timeout_reason():
    from repro.openflow import FlowMod, OutputAction
    testbed = _live_testbed(n_flows=1, run_until=0.1)
    testbed.channel.send_to_switch(FlowMod(
        match=Match(ip_src="10.51.0.1"), actions=(OutputAction(2),),
        hard_timeout=0.2, send_flow_removed=True))
    removed = []
    testbed.controller.events.on(
        "flow_removed", lambda t, m, dpid: removed.append(m))
    testbed.sim.run(until=2.0)
    assert removed[0].reason == 1           # hard timeout
    assert removed[0].duration >= 0.2
    testbed.shutdown()


def test_unflagged_rules_expire_silently():
    calibration = TestbedCalibration(
        switch=SwitchConfig(),
        controller=ControllerConfig(flow_idle_timeout=0.2))
    testbed = _live_testbed(n_flows=3, calibration=calibration,
                            run_until=2.0)
    # The reactive app doesn't set the flag; rules expired with no notice.
    assert len(testbed.switch.flow_table) == 0
    assert testbed.controller.flow_removed_received == 0
    testbed.shutdown()


# ---------------------------------------------------------------------------
# Flow statistics
# ---------------------------------------------------------------------------

def test_flow_stats_round_trip():
    testbed = _live_testbed(n_flows=5, run_until=1.0)
    testbed.controller.request_flow_stats()
    testbed.sim.run(until=testbed.sim.now + 0.2)
    reply = testbed.controller.flow_stats[1]
    assert isinstance(reply, FlowStatsReply)
    assert len(reply.entries) == 5
    # Each installed rule forwarded exactly one packet... the packet that
    # triggered it went out via packet_out, so counts are zero here.
    assert all(e.packet_count == 0 for e in reply.entries)
    assert all(e.duration > 0 for e in reply.entries)
    testbed.shutdown()


def test_flow_stats_respects_match_filter():
    testbed = _live_testbed(n_flows=5, run_until=1.0)
    first_src = "10.1.0.0"   # forged source of flow 0
    testbed.controller.request_flow_stats(
        match=Match(ip_src=first_src))
    testbed.sim.run(until=testbed.sim.now + 0.2)
    reply = testbed.controller.flow_stats[1]
    assert len(reply.entries) == 1
    assert reply.entries[0].match.ip_src == first_src
    testbed.shutdown()


def test_flow_stats_counts_hits():
    from repro.trafficgen import recurring_flows
    workload = recurring_flows(mbps(10), n_flows=3, rounds=4)
    testbed = build_testbed(buffer_256(), workload, seed=14)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=2.0)
    testbed.controller.request_flow_stats()
    testbed.sim.run(until=testbed.sim.now + 0.2)
    reply = testbed.controller.flow_stats[1]
    # Rounds 2-4 hit the installed rules: 3 hits per flow.
    assert sorted(e.packet_count for e in reply.entries) == [3, 3, 3]
    testbed.shutdown()


# ---------------------------------------------------------------------------
# Buffer age-out
# ---------------------------------------------------------------------------

def test_dead_controller_buffer_ages_out():
    calibration = TestbedCalibration(
        switch=SwitchConfig(buffer_ageout=0.5,
                            buffer_ageout_interval=0.1),
        controller=ControllerConfig())
    workload = single_packet_flows(mbps(20), n_flows=4,
                                   rng=RandomStreams(15))
    testbed = build_testbed(buffer_256(), workload, seed=15,
                            calibration=calibration)
    testbed.channel.bind_controller(lambda m: None)   # dead controller
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=2.0)
    assert testbed.switch.agent.buffer_ageout_drops == 4
    assert testbed.mechanism.units_in_use == 0
    testbed.shutdown()


def test_ageout_disabled_keeps_buffered_packets():
    calibration = TestbedCalibration(
        switch=SwitchConfig(buffer_ageout=0.0),
        controller=ControllerConfig())
    workload = single_packet_flows(mbps(20), n_flows=4,
                                   rng=RandomStreams(16))
    testbed = build_testbed(buffer_256(), workload, seed=16,
                            calibration=calibration)
    testbed.channel.bind_controller(lambda m: None)
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=2.0)
    assert testbed.mechanism.units_in_use == 4
    testbed.shutdown()


def test_ageout_config_validation():
    with pytest.raises(ValueError):
        SwitchConfig(buffer_ageout=-1.0)
    with pytest.raises(ValueError):
        SwitchConfig(buffer_ageout_interval=0.0)


# ---------------------------------------------------------------------------
# Port statistics
# ---------------------------------------------------------------------------

def test_port_stats_round_trip():
    testbed = _live_testbed(n_flows=5, run_until=1.0)
    testbed.controller.request_port_stats()
    testbed.sim.run(until=testbed.sim.now + 0.2)
    reply = testbed.controller.port_stats[1]
    by_port = {e.port_no: e for e in reply.entries}
    assert set(by_port) == {1, 2}
    # 5 packets came in on port 1 and left via port 2.
    assert by_port[1].rx_packets == 5
    assert by_port[2].tx_packets == 5
    assert by_port[2].tx_bytes == 5 * 1000
    testbed.shutdown()


def test_port_stats_single_port_filter():
    testbed = _live_testbed(n_flows=3, run_until=1.0)
    testbed.controller.request_port_stats(port_no=2)
    testbed.sim.run(until=testbed.sim.now + 0.2)
    reply = testbed.controller.port_stats[1]
    assert len(reply.entries) == 1
    assert reply.entries[0].port_no == 2
    testbed.shutdown()


def test_port_stats_unknown_port_is_empty():
    testbed = _live_testbed(n_flows=1, run_until=0.5)
    testbed.controller.request_port_stats(port_no=77)
    testbed.sim.run(until=testbed.sim.now + 0.2)
    assert testbed.controller.port_stats[1].entries == ()
    testbed.shutdown()
