"""The shared buffer pool: specs, policies, ledger, and the figsharing
experiment.

The acceptance bars of the subsystem:

* ``static`` at switch scope is **bit-identical** to the historical
  private-buffer runs (same metrics, and ``PoolSpec=None`` keys the
  cache exactly like a spec-less run),
* pooled accounting conserves units under arbitrary interleavings
  (property-based), and
* the figsharing experiment runs bit-identically serial vs parallel,
  with dt(alpha=2) admitting strictly more than static quotas on the
  fanin:4 pressure point.
"""

from __future__ import annotations

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic import (mm1_sojourn, mm1_sojourn_quantile,
                            mm1_utilization, packet_in_arrival_rate,
                            setup_delay_bound)
from repro.bufferpool import (PRIVATE_POOL_TOKEN, SCOPE_PORT, PoolSpec,
                              SharedBufferPool, build_pool, delay_pool,
                              dt_pool, expected_partitions, parse_pool,
                              pool_cache_token, registered_policies,
                              static_pool)
from repro.bufferpool.policies import (DelayAwarePolicy,
                                       DynamicThresholdPolicy,
                                       StaticPolicy, create_policy)
from repro.core import buffer_16
from repro.experiments import run_figsharing_experiment, run_once
from repro.experiments.calibration import default_calibration
from repro.obs import EVENT_POOL_PRESSURE, ObsConfig, RunObserver
from repro.openflow import BufferFullError, PacketBuffer
from repro.packets import udp_packet
from repro.scenarios import fanin_scenario, single_scenario
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


def _packet(i=0):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.0.{i % 250 + 1}", "10.0.0.2", 1000 + i, 2000)


# ---------------------------------------------------------------------------
# PoolSpec + parse_pool
# ---------------------------------------------------------------------------

def test_spec_names():
    assert static_pool().name == "static"
    assert dt_pool(alpha=2.0).name == "dt:alpha=2"
    assert dt_pool(alpha=0.5, scope=SCOPE_PORT).name == "dt:alpha=0.5/port"
    assert delay_pool().name == "delay"
    assert static_pool(capacity=64).name == "static/cap=64"


def test_parse_pool_round_trips():
    assert parse_pool("static") == static_pool()
    assert parse_pool("dt:alpha=2") == dt_pool(alpha=2.0)
    assert parse_pool("dt:alpha=0.5,scope=port,cap=64") \
        == dt_pool(alpha=0.5, scope=SCOPE_PORT, capacity=64)
    assert parse_pool("delay:target=0.008,weight=0.3") \
        == delay_pool(delay_target=0.008, ewma_weight=0.3)


def test_parse_pool_rejects_bad_input():
    with pytest.raises(ValueError, match="unknown pool key"):
        parse_pool("dt:beta=2")
    with pytest.raises(ValueError, match="needs key=value"):
        parse_pool("dt:alpha")
    with pytest.raises(ValueError, match="unknown pool policy"):
        parse_pool("elastic")


def test_spec_validation():
    with pytest.raises(ValueError, match="alpha must be positive"):
        PoolSpec(policy="dt", alpha=0.0)
    with pytest.raises(ValueError, match="capacity must be >= 1"):
        PoolSpec(capacity=0)
    with pytest.raises(ValueError, match="unknown pool scope"):
        PoolSpec(scope="vlan")
    with pytest.raises(ValueError, match="ewma_weight"):
        PoolSpec(policy="delay", ewma_weight=1.5)


def test_spec_is_hashable_and_frozen():
    spec = dt_pool(alpha=2.0)
    assert hash(spec) == hash(dt_pool(alpha=2.0))
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.alpha = 3.0


def test_pool_cache_tokens():
    # None and an absent spec key identically -- a pooled run must never
    # resolve from a private-buffer cache entry or vice versa.
    assert pool_cache_token(None) == PRIVATE_POOL_TOKEN
    assert pool_cache_token(static_pool()) != PRIVATE_POOL_TOKEN
    # Every knob participates in the token.
    tokens = {pool_cache_token(s) for s in (
        static_pool(), dt_pool(alpha=1.0), dt_pool(alpha=2.0),
        dt_pool(alpha=2.0, scope=SCOPE_PORT), delay_pool(),
        delay_pool(delay_target=0.02), static_pool(capacity=64))}
    assert len(tokens) == 7


def test_scenario_token_gains_pool_segment():
    plain = single_scenario()
    pooled = plain.with_pool(dt_pool(alpha=2.0))
    assert f"pool={PRIVATE_POOL_TOKEN}" in plain.cache_token()
    assert plain.cache_token() != pooled.cache_token()
    assert "dt" in pooled.cache_token()
    assert pooled.name == "single+pool=dt:alpha=2"
    # with_pool leaves the original spec untouched (frozen value object).
    assert plain.pool is None


# ---------------------------------------------------------------------------
# Admission policies
# ---------------------------------------------------------------------------

def test_registered_policies():
    assert registered_policies() == ("delay", "dt", "static")


def test_static_policy_enforces_quota():
    policy = StaticPolicy(static_pool())
    assert policy.admits(0, 4, 16, "p")
    assert policy.admits(3, 4, 16, "p")
    verdict = policy.admits(4, 4, 16, "p")
    assert not verdict and verdict.reason == "quota"
    assert policy.admits(0, 4, 0, "p").reason == "pool-full"


def test_dt_policy_threshold_inequality():
    # Admit strictly while occupancy < alpha * free.
    policy = DynamicThresholdPolicy(dt_pool(alpha=2.0))
    assert policy.admits(7, 4, 4, "p")            # 7 < 8
    verdict = policy.admits(8, 4, 4, "p")          # 8 >= 8
    assert not verdict and verdict.reason == "threshold"
    assert policy.admits(0, 4, 0, "p").reason == "pool-full"
    # alpha < 1 shares less than the free headroom.
    tight = DynamicThresholdPolicy(dt_pool(alpha=0.5))
    assert tight.admits(1, 4, 4, "p")              # 1 < 2
    assert not tight.admits(2, 4, 4, "p")          # 2 >= 2


def test_delay_policy_scales_threshold_by_ewma():
    spec = delay_pool(delay_target=0.010, ewma_weight=0.5, alpha=1.0)
    policy = DelayAwarePolicy(spec)
    # Neutral before any observation: behaves exactly like dt.
    assert policy.threshold_scale("p") == 1.0
    assert policy.admits(3, 4, 4, "p") and not policy.admits(4, 4, 4, "p")
    # Fast round trips (half the target) widen the threshold.
    policy.observe_hold("p", 0.005)
    assert policy.threshold_scale("p") == pytest.approx(2.0)
    assert policy.admits(7, 4, 4, "p") and not policy.admits(8, 4, 4, "p")
    # Slow round trips shrink it; the clamp bounds both directions.
    policy.observe_hold("q", 1.0)
    assert policy.threshold_scale("q") == 0.25
    policy.observe_hold("r", 1e-9)
    assert policy.threshold_scale("r") == 4.0
    # EWMA actually averages: 0.5*0.025 + 0.5*0.005 = 0.015.
    policy.observe_hold("p", 0.025)
    assert policy.ewma("p") == pytest.approx(0.015)


def test_create_policy_dispatches_by_name():
    assert isinstance(create_policy(static_pool()), StaticPolicy)
    assert isinstance(create_policy(dt_pool()), DynamicThresholdPolicy)
    assert isinstance(create_policy(delay_pool()), DelayAwarePolicy)


# ---------------------------------------------------------------------------
# SharedBufferPool ledger
# ---------------------------------------------------------------------------

def _pool(spec=None, capacity=8, quota=4):
    return SharedBufferPool(spec if spec is not None else dt_pool(alpha=2.0),
                            capacity, quota)


def test_pool_admit_and_release_track_occupancy():
    pool = _pool()
    assert pool.admit("a", 0.0)
    assert pool.admit("a", 0.0)
    assert pool.occupancy_of("a", 0.0) == 2
    assert pool.free_units(0.0) == 6
    pool.release_unit("a", 1.0)
    assert pool.occupancy_of("a", 1.0) == 1
    assert pool.peak_occupancy == 2


def test_pool_cooling_units_stay_counted():
    pool = _pool()
    pool.admit("a", 0.0)
    pool.release_unit("a", 1.0, cool_until=1.5)
    assert pool.occupancy_of("a", 1.0) == 1      # cooling, not free yet
    assert pool.occupancy_of("a", 1.5) == 0      # lazily pruned
    assert pool.free_units(2.0) == 8


def test_pool_rejections_count_and_emit_pressure():
    pool = _pool(spec=static_pool(), capacity=8, quota=2)
    events = []
    pool.events.on("pool_pressure", lambda *a: events.append(a))
    assert pool.admit("a", 0.0) and pool.admit("a", 0.0)
    verdict = pool.admit("a", 0.0)
    assert not verdict and verdict.reason == "quota"
    assert len(events) == 1
    now, kind, partition, occupancy, free, reason = events[0]
    assert (kind, partition, occupancy, reason) == ("reject", "a", 2, "quota")
    snap = pool.registry.snapshot()
    rejected = {k: v for k, v in snap.counters.items()
                if k[0] == "pool_rejected_total"}
    assert sum(rejected.values()) == 1


def test_pool_high_occupancy_pressure_edge_triggers_once():
    pool = _pool(spec=dt_pool(alpha=8.0), capacity=10, quota=10)
    events = []
    pool.events.on("pool_pressure", lambda *a: events.append(a))
    for _ in range(10):
        pool.admit("a", 0.0)
    highs = [e for e in events if e[1] == "high-occupancy"]
    assert len(highs) == 1                       # edge, not level
    # Draining below the re-arm point re-enables the edge.
    for _ in range(5):
        pool.release_unit("a", 1.0)
    for _ in range(5):
        pool.admit("a", 2.0)
    assert len([e for e in events if e[1] == "high-occupancy"]) == 2


def test_pool_return_underflow_guard():
    pool = _pool()
    pool.release_unit("ghost", 0.0)              # never admitted
    pool.admit("a", 0.0)
    pool.release_unit("a", 1.0)
    pool.release_unit("a", 2.0)                  # double return
    assert pool.occupancy_of("a", 2.0) == 0      # never negative
    snap = pool.registry.snapshot()
    underflow = {k: v for k, v in snap.counters.items()
                 if k[0] == "pool_return_underflow_total"}
    assert sum(underflow.values()) == 2


def test_pool_reset_partition_drops_live_and_cooling():
    pool = _pool()
    pool.admit("a", 0.0)
    pool.admit("a", 0.0)
    pool.release_unit("a", 1.0, cool_until=9.0)
    pool.reset_partition("a")
    assert pool.occupancy_of("a", 1.0) == 0
    assert pool.free_units(1.0) == 8


def test_pool_reset_accounting_rebases_peak_at_held_units():
    pool = _pool()
    for _ in range(4):
        pool.admit("a", 0.0)
    pool.release_unit("a", 1.0, cool_until=5.0)   # 3 live + 1 cooling
    pool.reset_accounting()
    assert pool.peak_occupancy == 4               # cooling still held
    snap = pool.registry.snapshot()
    admitted = {k: v for k, v in snap.counters.items()
                if k[0] == "pool_admitted_total"}
    assert sum(admitted.values()) == 0


def test_expected_partitions_and_build_pool_budget():
    assert expected_partitions(static_pool(), n_switches=3) == 3
    assert expected_partitions(static_pool(scope=SCOPE_PORT),
                               n_switches=2, ports_per_switch=5) == 10
    pool = build_pool(static_pool(scope=SCOPE_PORT), per_switch_units=16,
                      n_switches=1, ports_per_switch=5)
    assert pool.total_capacity == 16
    assert pool.default_quota == 3                # 16 // 5
    explicit = build_pool(dt_pool(capacity=64), per_switch_units=16,
                          n_switches=2)
    assert explicit.total_capacity == 64
    assert build_pool(None, 16, 1) is None


# ---------------------------------------------------------------------------
# Pooled PacketBuffer accounting
# ---------------------------------------------------------------------------

def test_pooled_store_routes_through_pool_policy():
    pool = _pool(spec=static_pool(), capacity=8, quota=2)
    buffer = PacketBuffer(capacity=64, pool=pool, partition="s1")
    buffer.store(_packet(0), now=0.0)
    buffer.store(_packet(1), now=0.0)
    # The pool's quota binds even though the private capacity (64) has
    # plenty of room -- the pool is the sole admission authority.
    with pytest.raises(BufferFullError) as excinfo:
        buffer.store(_packet(2), now=0.0)
    error = excinfo.value
    assert error.capacity == 8
    assert error.occupancy == 2
    assert error.partition == "s1"
    assert error.verdict == "quota"
    assert buffer.full_rejections == 1


def test_private_buffer_error_is_structured_too():
    buffer = PacketBuffer(capacity=1)
    buffer.store(_packet(0), now=0.0)
    with pytest.raises(BufferFullError) as excinfo:
        buffer.store(_packet(1), now=0.0)
    error = excinfo.value
    assert error.capacity == 1
    assert error.occupancy == 1
    assert error.partition is None
    assert error.verdict == "exhausted"


def test_pooled_release_returns_budget_to_the_right_partition():
    pool = _pool(capacity=8, quota=8)
    buffer = PacketBuffer(capacity=64, pool=pool, partition="s1")
    bid_a = buffer.store(_packet(0), now=0.0, partition="s1:p1")
    buffer.store(_packet(1), now=0.0, partition="s1:p2")
    assert pool.occupancy_of("s1:p1", 0.0) == 1
    assert pool.occupancy_of("s1:p2", 0.0) == 1
    buffer.release(bid_a, now=1.0)
    assert pool.occupancy_of("s1:p1", 1.0) == 0
    assert pool.occupancy_of("s1:p2", 1.0) == 1


def test_pooled_release_observes_hold_time():
    pool = SharedBufferPool(delay_pool(delay_target=0.010), 8, 8)
    buffer = PacketBuffer(capacity=64, pool=pool, partition="s1")
    bid = buffer.store(_packet(0), now=1.0)
    buffer.release(bid, now=1.020)
    assert pool.policy.ewma("s1") == pytest.approx(0.020)


def test_pooled_expire_returns_budget_without_hold():
    pool = SharedBufferPool(delay_pool(), 8, 8)
    buffer = PacketBuffer(capacity=64, reclaim_delay=0.5, pool=pool,
                          partition="s1")
    buffer.store(_packet(0), now=0.0)
    buffer.expire_older_than(5.0, now=5.0)
    # Aged-out units never completed a round trip: no EWMA sample...
    assert pool.policy.ewma("s1") is None
    # ...but the unit cools before the budget frees, mirroring the ring.
    assert pool.occupancy_of("s1", 5.0) == 1
    assert pool.occupancy_of("s1", 5.6) == 0


def test_pooled_unknown_release_never_touches_the_pool():
    pool = _pool(capacity=8, quota=8)
    buffer = PacketBuffer(capacity=64, pool=pool, partition="s1")
    buffer.store(_packet(0), now=0.0)
    buffer.release(424242, now=1.0)
    assert buffer.unknown_releases == 1
    assert pool.occupancy_of("s1", 1.0) == 1     # untouched
    snap = pool.registry.snapshot()
    underflow = {k: v for k, v in snap.counters.items()
                 if k[0] == "pool_return_underflow_total"}
    assert sum(underflow.values()) == 0


def test_clear_mid_cooldown_resets_pool_side_too():
    # Satellite-3 regression: a clear taken while units are cooling must
    # zero both ledgers -- leaked cooling entries would pin pool budget
    # (and peak gauges) forever.
    pool = _pool(capacity=8, quota=8)
    buffer = PacketBuffer(capacity=64, reclaim_delay=1.0, pool=pool,
                          partition="s1")
    bid = buffer.store(_packet(0), now=0.0)
    buffer.store(_packet(1), now=0.0)
    buffer.release(bid, now=0.5)                 # cooling until 1.5
    buffer.clear()                               # mid-cooldown
    assert buffer.occupancy(0.6) == 0
    assert pool.occupancy_of("s1", 0.6) == 0
    assert pool.free_units(0.6) == 8
    # Counters survive the clear; reset_accounting re-bases the peak at
    # the (now empty) holdings.
    assert buffer.total_buffered == 2
    buffer.reset_accounting()
    pool.reset_accounting()
    assert buffer.peak_units == 0
    assert pool.peak_occupancy == 0


def test_reset_accounting_mid_cooldown_keeps_peak_honest():
    buffer = PacketBuffer(capacity=8, reclaim_delay=1.0)
    bid = buffer.store(_packet(0), now=0.0)
    buffer.store(_packet(1), now=0.0)
    buffer.release(bid, now=0.5)                 # 1 live + 1 cooling
    buffer.reset_accounting()
    # The peak re-bases at live + cooling: reporting less than the
    # buffer actually holds would understate the next window's maximum.
    assert buffer.peak_units == 2


# ---------------------------------------------------------------------------
# Conservation invariants (property-based)
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.integers(0, 3)),
        st.tuples(st.just("release"), st.integers(0, 11)),
        st.tuples(st.just("expire"), st.floats(0.0, 0.5)),
        st.tuples(st.just("tick"), st.floats(0.001, 0.4)),
    ),
    min_size=1, max_size=60)


def _check_conservation(buffer, pool, live_ids, now, abandoned=0):
    in_use = buffer.units_in_use
    assert buffer.total_buffered == (buffer.total_released
                                     + buffer.total_expired
                                     + abandoned + in_use)
    assert in_use == len(live_ids)
    if pool is not None:
        # The two ledgers stay in lockstep: what the buffer holds (live
        # + cooling) is exactly what the pool charges its partitions.
        assert pool.total_occupancy(now) == buffer.occupancy(now)
        assert pool.total_occupancy(now) <= pool.total_capacity


@settings(max_examples=80, deadline=None)
@given(ops=_OPS, pooled=st.booleans(), reclaim=st.sampled_from([0.0, 0.05]))
def test_unit_conservation_under_interleavings(ops, pooled, reclaim):
    """stored == released + expired + in_use, private and pooled alike."""
    pool = (SharedBufferPool(dt_pool(alpha=2.0, scope=SCOPE_PORT), 12, 3)
            if pooled else None)
    buffer = PacketBuffer(capacity=12, reclaim_delay=reclaim, pool=pool,
                          partition="sw")
    live_ids: list[int] = []
    now = 0.0
    for op, arg in ops:
        if op == "store":
            try:
                live_ids.append(buffer.store(
                    _packet(arg), now, partition=f"sw:p{arg}"
                    if pooled else None))
            except BufferFullError:
                pass
        elif op == "release":
            # Mix of known ids, repeats and never-issued ids.
            target = (live_ids[arg % len(live_ids)]
                      if live_ids and arg < 10 else 999_000 + arg)
            if buffer.release(target, now) is not None:
                live_ids.remove(target)
        elif op == "expire":
            for bid in buffer.expire_older_than(now - arg, now=now):
                live_ids.remove(bid)
        else:
            now += arg
        _check_conservation(buffer, pool, live_ids, now)
    # clear() abandons whatever is live: the counters retain history, so
    # the conservation identity closes with the abandoned term.
    abandoned = buffer.units_in_use
    buffer.clear()
    live_ids.clear()
    _check_conservation(buffer, pool, live_ids, now, abandoned=abandoned)


# ---------------------------------------------------------------------------
# Golden bit-identity: static pool vs private buffers
# ---------------------------------------------------------------------------

def _run(scenario, seed=11):
    workload = single_packet_flows(mbps(40), n_flows=150,
                                   rng=RandomStreams(seed))
    return run_once(buffer_16(), workload, seed=seed, scenario=scenario)


def test_static_switch_scope_is_bit_identical_to_private():
    private = _run(single_scenario())
    pooled = _run(single_scenario().with_pool(static_pool()))
    # At switch scope the single partition's quota equals the buffer
    # capacity, so every admission decision matches the private path;
    # only the pool's own peak gauge (absent privately) may differ.
    # (TimeSeries carries no __eq__, so compare fields by value.)
    for field in dataclasses.fields(private):
        if field.name == "pool_peak_units":
            continue
        mine, theirs = getattr(private, field.name), \
            getattr(pooled, field.name)
        if hasattr(mine, "times"):
            assert list(mine.times) == list(theirs.times), field.name
            assert list(mine.values) == list(theirs.values), field.name
        else:
            assert mine == theirs, field.name
    assert private.pool_peak_units == 0
    assert pooled.pool_peak_units > 0


def test_dt_admits_strictly_more_than_static_under_fanin_pressure():
    scenario = fanin_scenario(4)
    static_run = _run(scenario.with_pool(static_pool(scope=SCOPE_PORT)))
    dt_run = _run(scenario.with_pool(dt_pool(alpha=2.0, scope=SCOPE_PORT)))
    assert static_run.buffer_full_rejections > 0
    assert dt_run.buffer_full_rejections < static_run.buffer_full_rejections
    # Borrowed headroom shows up as a higher pool peak.
    assert dt_run.pool_peak_units >= static_run.pool_peak_units


def test_pool_pressure_instants_reach_the_trace():
    observer = RunObserver(ObsConfig(trace=True))
    workload = single_packet_flows(mbps(40), n_flows=150,
                                   rng=RandomStreams(11))
    run_once(buffer_16(), workload, seed=11, obs=observer,
             scenario=fanin_scenario(4).with_pool(
                 static_pool(scope=SCOPE_PORT)))
    pressure = [r for r in observer.recorder.records
                if r.name == EVENT_POOL_PRESSURE]
    assert pressure
    assert {r.attrs["kind"] for r in pressure} >= {"reject"}
    assert all(r.attrs["partition"].startswith("ovs:p")
               for r in pressure if r.attrs["kind"] == "reject")


def test_switch_rejection_counter_is_partition_labelled():
    observer = RunObserver(ObsConfig(trace=False))
    workload = single_packet_flows(mbps(40), n_flows=150,
                                   rng=RandomStreams(11))
    run_once(buffer_16(), workload, seed=11, obs=observer,
             scenario=fanin_scenario(4).with_pool(
                 static_pool(scope=SCOPE_PORT)))
    snap = observer.observation.metrics
    rejections = {k: v for k, v in snap.counters.items()
                  if k[0] == "switch_buffer_rejections_total"}
    assert rejections and sum(rejections.values()) > 0
    partitions = {dict(labels).get("partition")
                  for _, labels in rejections}
    assert all(p and p.startswith("ovs:p") for p in partitions)
    occupancy = {k for k in snap.gauges if k[0] == "pool_occupancy_units"}
    assert len(occupancy) >= 2                   # per-partition gauges


# ---------------------------------------------------------------------------
# The figsharing experiment
# ---------------------------------------------------------------------------

_SMALL_POOLS = (static_pool(scope=SCOPE_PORT),
                dt_pool(alpha=2.0, scope=SCOPE_PORT))


def _sharing(workers):
    return run_figsharing_experiment(
        loss_rates=(0.0, 0.02), pools=_SMALL_POOLS, repetitions=2,
        n_flows=150, workers=workers, quick=True)


def _row_tuple(row):
    return dataclasses.astuple(row)


def test_figsharing_serial_vs_parallel_bit_identical():
    serial = _sharing(workers=1)
    parallel = _sharing(workers=2)
    assert set(serial.sweeps) == set(parallel.sweeps)
    for key in serial.sweeps:
        assert _row_tuple(serial.sweeps[key].rows[0]) \
            == _row_tuple(parallel.sweeps[key].rows[0])
    # The acceptance criterion: dt(alpha=2) rejects strictly less than
    # static quotas on the fanin:4 pressure point.  The flow-granularity
    # buffer only comes under pressure once loss triggers re-buffering,
    # so it is held to "no worse" rather than strictly better.
    for label in serial.labels:
        static_row = serial.row_for(label, "static/port", 0.0)
        dt_row = serial.row_for(label, "dt:alpha=2/port", 0.0)
        assert dt_row.full_rejections <= static_row.full_rejections
    pkt = serial.labels[0]
    static_pkt = serial.row_for(pkt, "static/port", 0.0)
    dt_pkt = serial.row_for(pkt, "dt:alpha=2/port", 0.0)
    assert static_pkt.full_rejections > 0
    assert dt_pkt.full_rejections < static_pkt.full_rejections
    # Peaks stay within the shared budget and rise with sharing.
    for key, sweep in serial.sweeps.items():
        assert sweep.rows[0].pool_peak_units <= 16


def test_figsharing_p99_within_analytic_bound_at_low_load():
    # Mahmood-style M/M/1 sanity check: at a rate far below the
    # exhaustion knee, the simulated p99 setup delay stays under the
    # closed-form bound derived outside the simulator.
    data = run_figsharing_experiment(
        loss_rates=(0.0,), rate_mbps=10.0, pools=_SMALL_POOLS,
        repetitions=1, n_flows=100, workers=1, quick=True)
    bound = setup_delay_bound(10.0, default_calibration(), quantile=0.99)
    assert bound < 0.010                         # a real bound, not inf
    for label in data.labels:
        for pool_name in data.pool_names:
            row = data.row_for(label, pool_name, 0.0)
            assert row.completion_rate == pytest.approx(1.0)
            assert 0.0 < row.setup_delay_p99 < bound


def test_figsharing_rejects_bad_loss_rates():
    with pytest.raises(ValueError, match="at least one loss rate"):
        run_figsharing_experiment(loss_rates=())
    with pytest.raises(ValueError, match="loss rates must be"):
        run_figsharing_experiment(loss_rates=(1.5,))


# ---------------------------------------------------------------------------
# Analytic M/M/1 stub
# ---------------------------------------------------------------------------

def test_mm1_closed_forms():
    assert mm1_utilization(50.0, 100.0) == pytest.approx(0.5)
    assert mm1_sojourn(50.0, 100.0) == pytest.approx(1.0 / 50.0)
    assert math.isinf(mm1_sojourn(100.0, 100.0))
    # Exponential sojourn: p99 is ~4.6x the mean; quantile 0 is free.
    w = mm1_sojourn(50.0, 100.0)
    assert mm1_sojourn_quantile(50.0, 100.0, 0.99) \
        == pytest.approx(-w * math.log(0.01))
    assert mm1_sojourn_quantile(50.0, 100.0, 0.0) == 0.0
    with pytest.raises(ValueError):
        mm1_sojourn(-1.0, 100.0)
    with pytest.raises(ValueError):
        mm1_sojourn(1.0, 0.0)


def test_packet_in_arrival_rate():
    # 10 Mbps of 1000-byte single-packet flows = 1250 misses/s.
    assert packet_in_arrival_rate(10e6, 1000) == pytest.approx(1250.0)


def test_setup_delay_bound_grows_with_load_and_saturates():
    calibration = default_calibration()
    low = setup_delay_bound(10.0, calibration)
    mid = setup_delay_bound(40.0, calibration)
    assert 0.0 < low < mid < 0.050
    # Past controller saturation the M/M/1 node (and the bound) diverge.
    assert math.isinf(setup_delay_bound(100_000.0, calibration))
