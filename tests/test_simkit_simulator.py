"""Tests for the discrete-event simulator core."""

from __future__ import annotations

import math

import pytest

from repro.simkit import (PRIORITY_LATE, PRIORITY_URGENT, SchedulingError,
                          Simulator)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_runs_callback_at_correct_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.0]


def test_callbacks_receive_arguments():
    sim = Simulator()
    seen = []
    sim.schedule(0.1, seen.append, "payload")
    sim.run()
    assert seen == ["payload"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_priority_breaks_ties():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "late", priority=PRIORITY_LATE)
    sim.schedule(1.0, order.append, "normal")
    sim.schedule(1.0, order.append, "urgent", priority=PRIORITY_URGENT)
    sim.run()
    assert order == ["urgent", "normal", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_scheduling_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(0.5, lambda: None)


def test_non_finite_time_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule_at(math.inf, lambda: None)
    with pytest.raises(SchedulingError):
        sim.schedule_at(math.nan, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(5.0, seen.append, "late")
    sim.run(until=2.0)
    assert seen == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["early", "late"]


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, seen.append, 3)
    sim.run()
    assert seen == [1]
    assert sim.now == 2.0


def test_events_scheduled_during_execution_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(1.0, seen.append, "nested"))
    sim.run()
    assert seen == ["nested"]
    assert sim.now == 2.0


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == math.inf
    sim.schedule(2.5, lambda: None)
    assert sim.peek() == 2.5


def test_peek_skips_cancelled_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek() == 2.0


def test_pending_count_ignores_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_count() == 2
    handle.cancel()
    assert sim.pending_count() == 1


def test_pending_count_is_a_live_counter():
    """REGRESSION: pending_count is O(1) bookkeeping, not a heap scan —
    it must stay exact across ready-queue entries, double cancels, and
    post-execution stale cancels."""
    sim = Simulator()
    heap_handle = sim.schedule(1.0, lambda: None)
    sim.schedule(0.0, lambda: None)      # same-instant micro-queue entry
    assert sim.pending_count() == 2
    heap_handle.cancel()
    heap_handle.cancel()                 # idempotent: no double decrement
    assert sim.pending_count() == 1
    sim.run()
    assert sim.pending_count() == 0


def test_cancel_after_execution_does_not_corrupt_pending_count():
    sim = Simulator()
    handle = sim.schedule(0.5, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.pending_count() == 0
    handle.cancel()                      # stale: entry already executed
    assert sim.pending_count() == 0


def test_max_events_guard():
    sim = Simulator()
    def reschedule():
        sim.schedule(1.0, reschedule)
    sim.schedule(1.0, reschedule)
    sim.run(max_events=5)
    assert sim.events_executed == 5


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_drain_cancels_batch():
    sim = Simulator()
    seen = []
    handles = [sim.schedule(1.0, seen.append, i) for i in range(3)]
    sim.drain(handles)
    sim.run()
    assert seen == []
