"""Span recorder + metrics registry unit tests (repro.obs core)."""

from __future__ import annotations

import pytest

from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       MetricsSnapshot, SpanRecorder, validate_nesting)
from repro.obs.spans import KIND_INSTANT, KIND_SPAN
from repro.simkit import Simulator
from repro.simkit.tracing import TraceLog


# ---------------------------------------------------------------------------
# SpanRecorder
# ---------------------------------------------------------------------------

def test_begin_end_records_interval_with_attrs():
    recorder = SpanRecorder()
    span = recorder.begin("setup", t=1.0, category="flow", track="flow-1",
                          flow_id=1)
    child = span.child("stage", t=1.25)
    child.end(t=1.5)
    span.end(t=2.0, mechanism="buffer-16")
    assert len(recorder) == 2
    root, stage = recorder.records
    assert root.name == "setup" and root.duration == 1.0
    assert root.attrs == {"flow_id": 1, "mechanism": "buffer-16"}
    assert stage.parent_id == root.span_id
    assert stage.category == "flow" and stage.track == "flow-1"
    assert root.kind == KIND_SPAN and root.closed


def test_clock_supplies_default_timestamps():
    now = [0.5]
    recorder = SpanRecorder(clock=lambda: now[0])
    span = recorder.begin("s")
    now[0] = 0.75
    record = span.end()
    assert record.start == 0.5 and record.end == 0.75


def test_open_spans_tracks_live_handles():
    recorder = SpanRecorder()
    a = recorder.begin("a", t=0.0)
    b = recorder.begin("b", t=0.0)
    assert recorder.open_spans == 2
    a.end(t=1.0)
    b.end(t=1.0)
    assert recorder.open_spans == 0


def test_double_end_rejected():
    span = SpanRecorder().begin("once", t=0.0)
    span.end(t=1.0)
    with pytest.raises(ValueError, match="already closed"):
        span.end(t=2.0)


def test_add_span_retroactive_and_rejects_negative_duration():
    recorder = SpanRecorder()
    record = recorder.add_span("whole", 1.0, 3.0, category="flow")
    assert record is not None and record.duration == 2.0
    with pytest.raises(ValueError, match="ends before it starts"):
        recorder.add_span("backwards", 3.0, 1.0)


def test_instant_is_closed_zero_duration():
    recorder = SpanRecorder()
    record = recorder.instant("drop", t=2.0, drop_reason="buffer_full")
    assert record.kind == KIND_INSTANT
    assert record.closed and record.duration == 0.0
    assert record.attrs["drop_reason"] == "buffer_full"


def test_disabled_recorder_stores_nothing_but_handles_work():
    recorder = SpanRecorder(enabled=False)
    span = recorder.begin("s", t=0.0)
    span.end(t=1.0)                      # must not raise
    assert recorder.instant("i", t=0.0) is None
    assert recorder.add_span("a", 0.0, 1.0) is None
    assert len(recorder) == 0 and recorder.dropped == 0


def test_max_spans_cap_counts_drops_and_clear_resets():
    recorder = SpanRecorder(max_spans=2)
    for n in range(5):
        recorder.instant(f"e{n}", t=float(n))
    assert len(recorder) == 2
    assert recorder.dropped == 3
    recorder.clear()
    assert len(recorder) == 0 and recorder.dropped == 0


def test_on_record_live_sink_sees_accepted_records_only():
    recorder = SpanRecorder(max_spans=1)
    seen = []
    recorder.on_record = seen.append
    recorder.instant("kept", t=0.0)
    recorder.instant("dropped", t=1.0)
    assert [r.name for r in seen] == ["kept"]


# ---------------------------------------------------------------------------
# validate_nesting
# ---------------------------------------------------------------------------

def test_validate_nesting_accepts_well_formed_tree():
    recorder = SpanRecorder()
    root = recorder.add_span("root", 0.0, 1.0)
    recorder.add_span("child", 0.2, 0.8, parent=root.span_id)
    recorder.add_span("edge", 0.0, 1.0, parent=root.span_id)
    assert validate_nesting(recorder.records) == []


def test_validate_nesting_flags_unclosed_span():
    recorder = SpanRecorder()
    recorder.begin("open", t=0.0)        # never ended
    problems = validate_nesting(recorder.records)
    assert problems and "never closed" in problems[0]


def test_validate_nesting_flags_unknown_parent():
    recorder = SpanRecorder()
    recorder.add_span("orphan", 0.0, 1.0, parent=999)
    problems = validate_nesting(recorder.records)
    assert problems and "unknown parent" in problems[0]


def test_validate_nesting_flags_child_outside_parent():
    recorder = SpanRecorder()
    root = recorder.add_span("root", 0.5, 1.0)
    recorder.add_span("early", 0.0, 0.9, parent=root.span_id)
    recorder.add_span("late", 0.6, 2.0, parent=root.span_id)
    problems = validate_nesting(recorder.records)
    assert len(problems) == 2
    assert any("starts at" in p for p in problems)
    assert any("ends at" in p for p in problems)


# ---------------------------------------------------------------------------
# Counters / gauges / histograms
# ---------------------------------------------------------------------------

def test_counter_inc_and_reset():
    counter = Counter("packets_total", switch="ovs")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0
    assert counter.labels == (("switch", "ovs"),)


def test_gauge_set_and_track_max():
    gauge = Gauge("peak_units")
    gauge.track_max(3)
    gauge.track_max(7)
    gauge.track_max(5)
    assert gauge.value == 7
    gauge.reset(2)
    assert gauge.value == 2


def test_histogram_bucket_placement_is_upper_bound_inclusive():
    histogram = Histogram("delay_seconds", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.001, 0.05, 5.0):
        histogram.observe(value)
    # (<=0.001) x2, (0.001, 0.01] x0, (0.01, 0.1] x1, overflow x1
    assert histogram.counts == [2, 0, 1, 1]
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(5.0515)


def test_histogram_requires_buckets():
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("empty", buckets=())


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------

def test_registry_get_or_create_is_idempotent_per_label_set():
    registry = MetricsRegistry()
    a = registry.counter("hits_total", switch="s1")
    b = registry.counter("hits_total", switch="s1")
    c = registry.counter("hits_total", switch="s2")
    assert a is b and a is not c
    assert len(registry) == 2


def test_registry_kind_conflict_raises_type_error():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError, match="already registered"):
        registry.gauge("x")
    with pytest.raises(TypeError, match="already registered"):
        registry.histogram("x")


def test_registry_adopts_standalone_metric_shared_not_copied():
    registry = MetricsRegistry()
    counter = Counter("pktbuf_buffered_total")
    registry.register(counter)
    registry.register(counter)           # same instance is fine
    counter.inc(3)
    assert registry.snapshot().counters[("pktbuf_buffered_total", ())] == 3
    with pytest.raises(ValueError, match="different instance"):
        registry.register(Counter("pktbuf_buffered_total"))


def test_registry_get_does_not_create():
    registry = MetricsRegistry()
    assert registry.get("nope") is None
    assert len(registry) == 0


def test_registry_metrics_sorted_by_name_then_labels():
    registry = MetricsRegistry()
    registry.counter("b_total")
    registry.counter("a_total", z="2")
    registry.counter("a_total", z="1")
    names = [(m.name, m.labels) for m in registry.metrics()]
    assert names == sorted(names)


# ---------------------------------------------------------------------------
# MetricsSnapshot merge semantics
# ---------------------------------------------------------------------------

def _snapshot(counter=0, gauge=0.0, observations=()):
    registry = MetricsRegistry()
    registry.counter("c_total").inc(counter)
    registry.gauge("g_peak").track_max(gauge)
    histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
    for value in observations:
        histogram.observe(value)
    return registry.snapshot()


def test_merge_counters_add_gauges_max_histograms_elementwise():
    merged = MetricsSnapshot()
    merged.merge(_snapshot(counter=2, gauge=5.0, observations=(0.05,)))
    merged.merge(_snapshot(counter=3, gauge=4.0, observations=(0.5, 2.0)))
    assert merged.counters[("c_total", ())] == 5
    assert merged.gauges[("g_peak", ())] == 5.0
    data = merged.histograms[("h_seconds", ())]
    assert data.counts == (1, 1, 1)
    assert data.count == 3
    assert data.sum == pytest.approx(2.55)


def test_merge_rejects_mismatched_histogram_buckets():
    left = MetricsRegistry()
    left.histogram("h", buckets=(0.1,)).observe(0.05)
    right = MetricsRegistry()
    right.histogram("h", buckets=(0.2,)).observe(0.05)
    merged = left.snapshot()
    with pytest.raises(ValueError, match="bucket bounds"):
        merged.merge(right.snapshot())


def test_with_labels_rescopes_every_metric():
    snapshot = _snapshot(counter=1, gauge=2.0, observations=(0.5,))
    scoped = snapshot.with_labels(run="buffer-16")
    assert scoped.counters[("c_total", (("run", "buffer-16"),))] == 1
    assert scoped.gauges[("g_peak", (("run", "buffer-16"),))] == 2.0
    assert ("h_seconds", (("run", "buffer-16"),)) in scoped.histograms
    # original untouched
    assert ("c_total", ()) in snapshot.counters
    assert not scoped.empty and MetricsSnapshot().empty


# ---------------------------------------------------------------------------
# TraceLog compatibility shim (satellite: dump truncation indicators)
# ---------------------------------------------------------------------------

def _tracelog(**kwargs):
    return TraceLog(Simulator(), enabled=True, **kwargs)


def test_tracelog_records_route_through_span_recorder():
    log = _tracelog()
    log.record("switch", "packet_in", xid=7)
    assert log.count("switch") == 1
    (record,) = log.records
    assert (record.source, record.kind, record.detail) \
        == ("switch", "packet_in", {"xid": 7})
    # the same event is visible as a span-layer instant record
    assert log.recorder.records[0].kind == KIND_INSTANT


def test_tracelog_dump_limit_appends_truncation_trailer():
    log = _tracelog()
    for n in range(5):
        log.record("switch", f"event{n}")
    dump = log.dump(limit=2)
    assert "event1" in dump and "event2" not in dump
    assert "... 3 more record(s) truncated by limit=2" in dump


def test_tracelog_dump_reports_capture_drops():
    log = _tracelog(max_records=2)
    for n in range(6):
        log.record("switch", f"event{n}")
    assert log.dropped == 4
    assert ("... 4 record(s) dropped at capture (max_records=2)"
            in log.dump())


def test_tracelog_dump_without_truncation_has_no_trailer():
    log = _tracelog()
    log.record("switch", "only")
    assert "truncated" not in log.dump()
    assert "dropped" not in log.dump()


def test_tracelog_subscriber_fires_per_accepted_record():
    log = _tracelog(max_records=1)
    seen = []
    log.subscriber = seen.append
    log.record("switch", "kept")
    log.record("switch", "over_cap")
    assert [r.kind for r in seen] == ["kept"]
