"""Tests for the control channel transport."""

from __future__ import annotations

import pytest

from repro.netsim import DuplexLink
from repro.openflow import (ControlChannel, DEFAULT_ENCAPSULATION_OVERHEAD,
                            Hello, PacketIn)
from repro.packets import udp_packet
from repro.simkit import mbps


def _channel(sim, overhead=DEFAULT_ENCAPSULATION_OVERHEAD):
    cable = DuplexLink(sim, "ctrl", mbps(100))
    channel = ControlChannel(sim, cable, encapsulation_overhead=overhead)
    to_controller, to_switch = [], []
    channel.bind_controller(to_controller.append)
    channel.bind_switch(to_switch.append)
    return channel, cable, to_controller, to_switch


def test_messages_delivered_to_bound_handlers(sim):
    channel, cable, to_controller, to_switch = _channel(sim)
    up = Hello()
    down = Hello()
    channel.send_to_controller(up)
    channel.send_to_switch(down)
    sim.run(until=1.0)
    assert to_controller == [up]
    assert to_switch == [down]
    assert channel.to_controller_count == 1
    assert channel.to_switch_count == 1


def test_send_without_binding_raises(sim):
    cable = DuplexLink(sim, "ctrl", mbps(100))
    channel = ControlChannel(sim, cable)
    with pytest.raises(RuntimeError):
        channel.send_to_controller(Hello())
    with pytest.raises(RuntimeError):
        channel.send_to_switch(Hello())


def test_wire_size_adds_encapsulation(sim):
    channel, *_ = _channel(sim, overhead=54)
    message = Hello()
    assert channel.wire_size(message) == message.wire_len + 54


def test_sent_at_is_stamped(sim):
    channel, cable, to_controller, _ = _channel(sim)
    message = Hello()
    sim.schedule(0.25, channel.send_to_controller, message)
    sim.run(until=1.0)
    assert message.sent_at == pytest.approx(0.25)


def test_large_messages_take_longer_on_the_wire(sim):
    channel, cable, to_controller, _ = _channel(sim)
    packet = udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                        "10.0.0.1", "10.0.0.2", 1, 2, frame_len=1000)
    big = PacketIn(packet=packet, data_len=packet.wire_len)
    small = Hello()
    arrival_times = []
    channel.bind_controller(
        lambda m: arrival_times.append((m, sim.now)))
    channel.send_to_controller(big)
    sim.run(until=1.0)
    big_latency = arrival_times[0][1]
    sim2_latency = None
    # Fresh channel for the small message (no queueing interference).
    channel2, *_ = _channel(sim)
    channel2.bind_controller(
        lambda m: arrival_times.append((m, sim.now)))
    start = sim.now
    channel2.send_to_controller(small)
    sim.run(until=start + 1.0)
    small_latency = arrival_times[1][1] - start
    assert big_latency > small_latency


def test_reset_accounting(sim):
    channel, cable, to_controller, _ = _channel(sim)
    channel.send_to_controller(Hello())
    sim.run(until=1.0)
    channel.reset_accounting()
    assert channel.to_controller_count == 0
    assert cable.forward.bytes_sent == 0


def test_negative_overhead_rejected(sim):
    cable = DuplexLink(sim, "ctrl", mbps(100))
    with pytest.raises(ValueError):
        ControlChannel(sim, cable, encapsulation_overhead=-1)
