"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import buffer_256, no_buffer
from repro.experiments import build_testbed
from repro.simkit import RandomStreams, Simulator, mbps
from repro.trafficgen import batched_multi_packet_flows, single_packet_flows


@pytest.fixture(autouse=True)
def _isolated_result_cache(monkeypatch, tmp_path):
    """Keep the repro.parallel result cache out of the user's home."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> RandomStreams:
    """Deterministic random streams."""
    return RandomStreams(42)


@pytest.fixture
def small_workload_a(rng):
    """A small §IV-style workload (fast to run)."""
    return single_packet_flows(mbps(50), n_flows=40, rng=rng)


@pytest.fixture
def small_workload_b(rng):
    """A small §V-style workload (fast to run)."""
    return batched_multi_packet_flows(mbps(50), n_flows=10,
                                      packets_per_flow=6, batch_size=5,
                                      rng=rng)


@pytest.fixture
def testbed_buffered(small_workload_a):
    """A wired testbed with the buffer-256 mechanism."""
    return build_testbed(buffer_256(), small_workload_a, seed=7)


@pytest.fixture
def testbed_no_buffer(small_workload_a):
    """A wired testbed with buffering disabled."""
    return build_testbed(no_buffer(), small_workload_a, seed=7)
