"""Tests for the three buffer mechanisms (the paper's policies)."""

from __future__ import annotations

import pytest

from repro.core import (FlowGranularityBuffer, NoBuffer,
                        PacketGranularityBuffer)
from repro.openflow import OFP_NO_BUFFER, OutputAction, PacketOut, FlowMod
from repro.packets import udp_packet


def _packet(flow=0, seq=0, frame_len=1000):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.0.{flow + 1}", "10.0.0.2", 1000 + flow, 2000,
                      frame_len=frame_len, flow_id=flow, seq_in_flow=seq)


# ---------------------------------------------------------------------------
# NoBuffer
# ---------------------------------------------------------------------------

def test_no_buffer_encloses_full_frame():
    mechanism = NoBuffer()
    packet = _packet()
    decision = mechanism.on_miss(packet, in_port=1, now=0.0)
    assert decision.send_packet_in
    assert decision.buffer_id == OFP_NO_BUFFER
    assert decision.data_len == packet.wire_len
    assert not decision.stored
    assert mechanism.units_in_use == 0
    assert mechanism.capacity == 0


def test_no_buffer_packet_out_forwards_enclosed_packet():
    mechanism = NoBuffer()
    packet = _packet()
    message = PacketOut(actions=(OutputAction(2),),
                        buffer_id=OFP_NO_BUFFER,
                        data_len=packet.wire_len, packet=packet)
    result = mechanism.on_packet_out(message, now=0.0)
    assert result.packets == (packet,)
    assert not result.unknown


# ---------------------------------------------------------------------------
# PacketGranularityBuffer
# ---------------------------------------------------------------------------

def test_packet_granularity_truncates_to_miss_send_len():
    mechanism = PacketGranularityBuffer(capacity=4, miss_send_len=128)
    packet = _packet()
    decision = mechanism.on_miss(packet, in_port=1, now=0.0)
    assert decision.send_packet_in
    assert decision.buffer_id != OFP_NO_BUFFER
    assert decision.data_len == 128
    assert decision.stored
    assert mechanism.units_in_use == 1


def test_packet_granularity_each_packet_gets_own_unit():
    mechanism = PacketGranularityBuffer(capacity=8)
    first = mechanism.on_miss(_packet(0, 0), in_port=1, now=0.0)
    second = mechanism.on_miss(_packet(0, 1), in_port=1, now=0.0)
    assert first.buffer_id != second.buffer_id
    assert mechanism.units_in_use == 2
    # Both trigger packet_ins - the redundancy the paper's §V removes.
    assert first.send_packet_in and second.send_packet_in


def test_packet_granularity_degrades_when_full():
    mechanism = PacketGranularityBuffer(capacity=1)
    mechanism.on_miss(_packet(0), in_port=1, now=0.0)
    overflow = mechanism.on_miss(_packet(1), in_port=1, now=0.0)
    assert overflow.send_packet_in
    assert overflow.buffer_id == OFP_NO_BUFFER
    assert overflow.data_len == _packet(1).wire_len
    assert not overflow.stored


def test_packet_granularity_packet_out_releases_one():
    mechanism = PacketGranularityBuffer(capacity=4)
    packet = _packet()
    decision = mechanism.on_miss(packet, in_port=1, now=0.0)
    message = PacketOut(actions=(OutputAction(2),),
                        buffer_id=decision.buffer_id)
    result = mechanism.on_packet_out(message, now=1.0)
    assert result.packets == (packet,)
    assert mechanism.units_in_use == 0


def test_packet_granularity_unknown_buffer_id_flagged():
    mechanism = PacketGranularityBuffer(capacity=4)
    message = PacketOut(actions=(OutputAction(2),), buffer_id=999999)
    result = mechanism.on_packet_out(message, now=0.0)
    assert result.unknown
    assert result.packets == ()


def test_packet_granularity_flow_mod_release():
    mechanism = PacketGranularityBuffer(capacity=4)
    packet = _packet()
    decision = mechanism.on_miss(packet, in_port=1, now=0.0)
    message = FlowMod(buffer_id=decision.buffer_id,
                      actions=(OutputAction(2),))
    result = mechanism.on_flow_mod_release(message, now=1.0)
    assert result.packets == (packet,)


def test_packet_granularity_flow_mod_without_buffer_id_is_noop():
    mechanism = PacketGranularityBuffer(capacity=4)
    result = mechanism.on_flow_mod_release(FlowMod(), now=0.0)
    assert result.packets == () and not result.unknown


def test_small_frame_data_len_capped_at_frame():
    mechanism = PacketGranularityBuffer(capacity=4, miss_send_len=128)
    small = _packet(frame_len=60)
    decision = mechanism.on_miss(small, in_port=1, now=0.0)
    assert decision.data_len == 60


# ---------------------------------------------------------------------------
# FlowGranularityBuffer (Algorithms 1 and 2)
# ---------------------------------------------------------------------------

def test_flow_granularity_only_first_packet_triggers_request(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8)
    first = mechanism.on_miss(_packet(0, 0), in_port=1, now=0.0)
    later = [mechanism.on_miss(_packet(0, seq), in_port=1, now=0.0)
             for seq in range(1, 6)]
    assert first.send_packet_in
    assert all(not d.send_packet_in for d in later)
    assert all(d.stored for d in later)
    assert all(d.buffer_id == first.buffer_id for d in later)
    assert mechanism.units_in_use == 1
    assert mechanism.packets_stored == 6


def test_flow_granularity_distinct_flows_distinct_units(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8)
    a = mechanism.on_miss(_packet(0), in_port=1, now=0.0)
    b = mechanism.on_miss(_packet(1), in_port=1, now=0.0)
    assert a.buffer_id != b.buffer_id
    assert a.send_packet_in and b.send_packet_in
    assert mechanism.units_in_use == 2


def test_flow_granularity_packet_out_releases_whole_flow(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8)
    packets = [_packet(0, seq) for seq in range(4)]
    decision = mechanism.on_miss(packets[0], in_port=1, now=0.0)
    for packet in packets[1:]:
        mechanism.on_miss(packet, in_port=1, now=0.0)
    message = PacketOut(actions=(OutputAction(2),),
                        buffer_id=decision.buffer_id)
    result = mechanism.on_packet_out(message, now=1.0)
    assert result.packets == tuple(packets)     # Algorithm 2's drain loop
    assert mechanism.units_in_use == 0
    sim.run()   # timer cancelled, nothing pending fires


def test_flow_granularity_degrades_when_units_exhausted(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=1)
    mechanism.on_miss(_packet(0), in_port=1, now=0.0)
    overflow = mechanism.on_miss(_packet(1), in_port=1, now=0.0)
    assert overflow.send_packet_in
    assert overflow.buffer_id == OFP_NO_BUFFER
    assert not overflow.stored


def test_flow_granularity_timeout_resends_request(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8, retry_timeout=0.05,
                                      max_retries=3)
    retries = []
    mechanism.set_retry_sender(lambda packet, bid: retries.append((packet,
                                                                   bid)))
    decision = mechanism.on_miss(_packet(0, 0), in_port=1, now=0.0)
    sim.run(until=0.12)
    assert len(retries) == 2                      # t=0.05 and t=0.10
    assert all(bid == decision.buffer_id for _, bid in retries)
    assert mechanism.retries_sent == 2


def test_flow_granularity_retry_carries_latest_packet(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8, retry_timeout=0.05)
    retries = []
    mechanism.set_retry_sender(lambda packet, bid: retries.append(packet))
    mechanism.on_miss(_packet(0, 0), in_port=1, now=0.0)
    late = _packet(0, 1)
    sim.schedule(0.02, mechanism.on_miss, late, 1, 0.02)
    sim.run(until=0.06)
    assert retries[-1] is late


def test_flow_granularity_release_cancels_retries(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8, retry_timeout=0.05)
    retries = []
    mechanism.set_retry_sender(lambda p, b: retries.append(b))
    decision = mechanism.on_miss(_packet(0), in_port=1, now=0.0)
    sim.schedule(0.01, lambda: mechanism.on_packet_out(
        PacketOut(actions=(OutputAction(2),),
                  buffer_id=decision.buffer_id), 0.01))
    sim.run(until=0.5)
    assert retries == []


def test_flow_granularity_abandons_after_max_retries(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8, retry_timeout=0.01,
                                      max_retries=2)
    mechanism.set_retry_sender(lambda p, b: None)
    mechanism.on_miss(_packet(0), in_port=1, now=0.0)
    sim.run(until=0.2)
    assert mechanism.flows_abandoned == 1
    assert mechanism.units_in_use == 0            # unit was freed


def test_flow_granularity_flow_mod_release(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8)
    packet = _packet(0)
    decision = mechanism.on_miss(packet, in_port=1, now=0.0)
    result = mechanism.on_flow_mod_release(
        FlowMod(buffer_id=decision.buffer_id, actions=(OutputAction(2),)),
        now=1.0)
    assert result.packets == (packet,)


def test_flow_granularity_shutdown_cancels_timers(sim):
    mechanism = FlowGranularityBuffer(sim, capacity=8, retry_timeout=0.01)
    fired = []
    mechanism.set_retry_sender(lambda p, b: fired.append(b))
    mechanism.on_miss(_packet(0), in_port=1, now=0.0)
    mechanism.shutdown()
    sim.run(until=1.0)
    assert fired == []


def test_mechanism_validation(sim):
    with pytest.raises(ValueError):
        PacketGranularityBuffer(capacity=4, miss_send_len=-1)
    with pytest.raises(ValueError):
        FlowGranularityBuffer(sim, capacity=4, retry_timeout=0.0)
    with pytest.raises(ValueError):
        FlowGranularityBuffer(sim, capacity=4, max_retries=-1)
