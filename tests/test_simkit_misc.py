"""Tests for RNG streams, tracing, the event emitter, and unit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simkit import (BITS_PER_BYTE, EventEmitter, RandomStreams,
                          Simulator, TraceLog, mbps, msec, to_mbps, to_msec,
                          transmission_delay, usec)


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------

def test_same_seed_same_draws():
    a = RandomStreams(7).stream("x")
    b = RandomStreams(7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_adding_stream_does_not_perturb_existing():
    first = RandomStreams(3)
    draw_before = first.stream("existing").random()
    second = RandomStreams(3)
    second.stream("newcomer").random()  # extra consumer
    draw_after = second.stream("existing").random()
    assert draw_before == draw_after


def test_spawn_produces_independent_child():
    parent = RandomStreams(1)
    child = parent.spawn("worker")
    assert parent.stream("x").random() != child.stream("x").random()


def test_gauss_clamped_never_below_minimum():
    streams = RandomStreams(0)
    values = [streams.gauss_clamped("g", mean=0.0, stddev=10.0)
              for _ in range(200)]
    assert all(v >= 0.0 for v in values)
    assert any(v > 0.0 for v in values)


def test_helper_draws_in_range():
    streams = RandomStreams(5)
    for _ in range(50):
        assert 2 <= streams.uniform("u", 2, 3) <= 3
        assert 1 <= streams.randint("i", 1, 6) <= 6
        assert streams.expovariate("e", 10.0) >= 0.0


# ---------------------------------------------------------------------------
# TraceLog
# ---------------------------------------------------------------------------

def test_trace_disabled_records_nothing():
    sim = Simulator()
    log = TraceLog(sim, enabled=False)
    log.record("src", "kind", a=1)
    assert log.records == []


def test_trace_records_time_and_detail():
    sim = Simulator()
    log = TraceLog(sim, enabled=True)
    sim.schedule(1.0, lambda: log.record("switch", "miss", port=2))
    sim.run()
    (record,) = log.records
    assert record.time == 1.0
    assert record.source == "switch"
    assert record.detail == {"port": 2}


def test_trace_filter_and_count():
    sim = Simulator()
    log = TraceLog(sim, enabled=True)
    log.record("a", "x")
    log.record("a", "y")
    log.record("b", "x")
    assert log.count(source="a") == 2
    assert log.count(kind="x") == 2
    assert log.count(source="b", kind="x") == 1


def test_trace_max_records_drops_overflow():
    sim = Simulator()
    log = TraceLog(sim, enabled=True, max_records=2)
    for i in range(5):
        log.record("s", "k", i=i)
    assert len(log.records) == 2
    assert log.dropped == 3


def test_trace_subscriber_sees_records_live():
    sim = Simulator()
    log = TraceLog(sim, enabled=True)
    seen = []
    log.subscriber = seen.append
    log.record("s", "k")
    assert len(seen) == 1


def test_trace_dump_renders_lines():
    sim = Simulator()
    log = TraceLog(sim, enabled=True)
    log.record("s", "k", key="value")
    assert "key=value" in log.dump()


# ---------------------------------------------------------------------------
# EventEmitter
# ---------------------------------------------------------------------------

def test_emitter_calls_listeners_in_order():
    emitter = EventEmitter()
    seen = []
    emitter.on("e", lambda x: seen.append(("first", x)))
    emitter.on("e", lambda x: seen.append(("second", x)))
    emitter.emit("e", 1)
    assert seen == [("first", 1), ("second", 1)]


def test_emitter_ignores_unknown_events():
    EventEmitter().emit("nobody-listens", 1, 2, 3)


def test_emitter_off_removes_listener():
    emitter = EventEmitter()
    seen = []
    listener = seen.append
    emitter.on("e", listener)
    emitter.off("e", listener)
    emitter.emit("e", 1)
    assert seen == []


def test_emitter_listener_count_and_clear():
    emitter = EventEmitter()
    emitter.on("e", lambda: None)
    assert emitter.listener_count("e") == 1
    emitter.clear()
    assert emitter.listener_count("e") == 0


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------

def test_rate_conversions_round_trip():
    assert to_mbps(mbps(42.5)) == pytest.approx(42.5)
    assert to_msec(msec(3.25)) == pytest.approx(3.25)


def test_transmission_delay_basic():
    # 1000 bytes at 100 Mbps = 80 microseconds.
    assert transmission_delay(1000, mbps(100)) == pytest.approx(usec(80))


def test_transmission_delay_validation():
    with pytest.raises(ValueError):
        transmission_delay(100, 0)
    with pytest.raises(ValueError):
        transmission_delay(-1, 100)


@given(st.integers(min_value=0, max_value=10**9),
       st.floats(min_value=1.0, max_value=1e12))
def test_transmission_delay_properties(size, rate):
    delay = transmission_delay(size, rate)
    assert delay >= 0
    assert delay == pytest.approx(size * BITS_PER_BYTE / rate)
