"""Tests for the switch model: CPU, bus, ports, datapath, agent."""

from __future__ import annotations

import pytest

from repro.core import NoBuffer, PacketGranularityBuffer
from repro.netsim import DuplexLink
from repro.openflow import (ControlChannel, EchoRequest, ErrorMsg,
                            FeaturesRequest, FlowMod, Hello, Match,
                            OutputAction, PacketIn, PacketOut, PortNo,
                            BarrierRequest, BarrierReply, EchoReply,
                            FeaturesReply, OFP_NO_BUFFER)
from repro.simkit import Simulator, mbps, usec
from repro.switchsim import AsicCpuBus, Switch, SwitchConfig, SwitchCpu
from repro.packets import udp_packet


def _packet(flow=0, seq=0):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.0.{flow + 1}", "10.0.0.2", 1000 + flow, 2000,
                      flow_id=flow, seq_in_flow=seq)


def _harness(sim, mechanism=None, config=None):
    """A switch wired to loopback cables and a scripted controller side."""
    config = config or SwitchConfig()
    mechanism = mechanism or PacketGranularityBuffer(capacity=64)
    ctrl_cable = DuplexLink(sim, "ctrl", mbps(100))
    channel = ControlChannel(sim, ctrl_cable)
    received = []
    channel.bind_controller(received.append)
    switch = Switch(sim, config, mechanism, channel)
    h1 = DuplexLink(sim, "h1", mbps(100))
    h2 = DuplexLink(sim, "h2", mbps(100))
    switch.attach_port(1, h1, switch_side_forward=False)
    switch.attach_port(2, h2, switch_side_forward=False)
    delivered = {1: [], 2: []}
    h1.reverse.connect(delivered[1].append)
    h2.reverse.connect(delivered[2].append)
    return switch, channel, received, delivered, (h1, h2)


# ---------------------------------------------------------------------------
# SwitchCpu / AsicCpuBus
# ---------------------------------------------------------------------------

def test_cpu_usage_includes_baseline(sim):
    config = SwitchConfig(baseline_usage_percent=150.0)
    cpu = SwitchCpu(sim, config)
    assert cpu.usage_percent() == pytest.approx(150.0)
    cpu.execute(1.0)
    sim.run(until=2.0)
    assert cpu.usage_percent() == pytest.approx(200.0)


def test_cpu_datapath_batching_discounts_under_backlog(sim):
    config = SwitchConfig(dp_batch_floor=0.5)
    cpu = SwitchCpu(sim, config)
    done = []
    # Saturate all cores so the next datapath job sees a backlog.
    for _ in range(config.cpu_cores):
        cpu.execute(10.0)
    cpu.execute_datapath(1.0, lambda p: done.append(sim.now))
    sim.run(until=20.0)
    # Effective cost: 1.0 * (0.5 + 0.5/(1+4)) = 0.6; starts at t=10.
    assert done == [pytest.approx(10.6)]


def test_bus_serializes_both_directions(sim):
    bus = AsicCpuBus(sim, bandwidth_bps=8_000_000)   # 1 byte/us
    done = []
    bus.transfer_up(1000, lambda p: done.append(("up", sim.now)))
    bus.transfer_down(1000, lambda p: done.append(("down", sim.now)))
    sim.run(until=sim.now + 1.0)
    assert done == [("up", pytest.approx(0.001)),
                    ("down", pytest.approx(0.002))]
    assert bus.bytes_up == 1000 and bus.bytes_down == 1000


def test_bus_validation(sim):
    with pytest.raises(ValueError):
        AsicCpuBus(sim, bandwidth_bps=0)
    bus = AsicCpuBus(sim, bandwidth_bps=1000)
    with pytest.raises(ValueError):
        bus.transfer_up(0)


# ---------------------------------------------------------------------------
# Datapath behaviour
# ---------------------------------------------------------------------------

def test_miss_generates_packet_in(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    cables[0].forward.send(_packet(), 1000)
    sim.run(until=sim.now + 1.0)
    packet_ins = [m for m in received if isinstance(m, PacketIn)]
    assert len(packet_ins) == 1
    assert packet_ins[0].in_port == 1
    assert packet_ins[0].is_buffered
    assert switch.datapath.packets_missed == 1


def test_installed_rule_forwards_without_controller(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    packet = _packet()
    entry_match = Match.exact_from_packet(packet, in_port=1)
    switch.flow_table.insert(
        __import__("repro.openflow", fromlist=["FlowEntry"]).FlowEntry(
            match=entry_match, actions=(OutputAction(2),)), now=0.0)
    cables[0].forward.send(packet, 1000)
    sim.run(until=sim.now + 1.0)
    assert delivered[2] == [packet]
    # No control-plane involvement (keepalive probes aside).
    assert not [m for m in received if isinstance(m, PacketIn)]
    assert packet.switch_in_at is not None
    assert packet.switch_out_at is not None
    assert packet.switch_out_at > packet.switch_in_at


def test_flow_mod_then_matching_traffic(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    packet = _packet()
    flow_mod = FlowMod(match=Match.exact_from_packet(packet, in_port=1),
                       actions=(OutputAction(2),))
    channel.send_to_switch(flow_mod)
    sim.run(until=sim.now + 1.0)
    assert switch.agent.flow_mods_applied == 1
    assert len(switch.flow_table) == 1
    cables[0].forward.send(packet, 1000)
    sim.run(until=sim.now + 1.0)
    assert delivered[2] == [packet]


def test_buffered_packet_out_releases_and_forwards(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    packet = _packet()
    cables[0].forward.send(packet, 1000)
    sim.run(until=sim.now + 1.0)
    (packet_in,) = [m for m in received if isinstance(m, PacketIn)]
    channel.send_to_switch(PacketOut(actions=(OutputAction(2),),
                                     buffer_id=packet_in.buffer_id,
                                     in_port=1))
    sim.run(until=sim.now + 1.0)
    assert delivered[2] == [packet]
    assert switch.mechanism.units_in_use == 0


def test_unbuffered_packet_out_forwards_enclosed_frame(sim):
    switch, channel, received, delivered, cables = _harness(
        sim, mechanism=NoBuffer())
    packet = _packet()
    cables[0].forward.send(packet, 1000)
    sim.run(until=sim.now + 1.0)
    (packet_in,) = [m for m in received if isinstance(m, PacketIn)]
    assert not packet_in.is_buffered
    channel.send_to_switch(PacketOut(actions=(OutputAction(2),),
                                     buffer_id=OFP_NO_BUFFER,
                                     data_len=packet.wire_len,
                                     packet=packet, in_port=1))
    sim.run(until=sim.now + 1.0)
    assert delivered[2] == [packet]


def test_unknown_buffer_id_triggers_error_message(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    channel.send_to_switch(PacketOut(actions=(OutputAction(2),),
                                     buffer_id=987654, in_port=1))
    sim.run(until=sim.now + 1.0)
    errors = [m for m in received if isinstance(m, ErrorMsg)]
    assert len(errors) == 1
    assert switch.agent.errors_sent == 1


def test_flood_action_replicates_to_other_ports(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    packet = _packet()
    cables[0].forward.send(packet, 1000)
    sim.run(until=sim.now + 1.0)
    (packet_in,) = [m for m in received if isinstance(m, PacketIn)]
    channel.send_to_switch(PacketOut(
        actions=(OutputAction(int(PortNo.FLOOD)),),
        buffer_id=packet_in.buffer_id, in_port=1))
    sim.run(until=sim.now + 1.0)
    assert delivered[2] == [packet]      # flooded everywhere except port 1
    assert delivered[1] == []


def test_echo_features_barrier_hello_handling(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    channel.send_to_switch(Hello())
    channel.send_to_switch(EchoRequest(payload_len=8))
    channel.send_to_switch(FeaturesRequest())
    channel.send_to_switch(BarrierRequest())
    sim.run(until=sim.now + 1.0)
    kinds = [type(m) for m in received]
    assert Hello in kinds
    assert EchoReply in kinds
    assert BarrierReply in kinds
    (features,) = [m for m in received if isinstance(m, FeaturesReply)]
    assert features.n_buffers == 64
    assert set(features.ports) == {1, 2}


def test_replies_reference_request_xid(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    request = EchoRequest()
    channel.send_to_switch(request)
    sim.run(until=sim.now + 1.0)
    (reply,) = [m for m in received if isinstance(m, EchoReply)]
    assert reply.in_reply_to == request.xid


def test_flow_mods_apply_in_order(sim):
    """The connection-handler thread serializes rule installation."""
    switch, channel, received, delivered, cables = _harness(sim)
    installed = []
    switch.events.on("flow_installed",
                     lambda t, entry: installed.append(entry.cookie))
    for cookie in range(5):
        channel.send_to_switch(FlowMod(
            match=Match(ip_src=f"10.1.0.{cookie}"),
            actions=(OutputAction(2),), cookie=cookie))
    sim.run(until=sim.now + 1.0)
    assert installed == [0, 1, 2, 3, 4]


def test_flow_mod_with_buffer_id_releases_packet(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    packet = _packet()
    cables[0].forward.send(packet, 1000)
    sim.run(until=sim.now + 1.0)
    (packet_in,) = [m for m in received if isinstance(m, PacketIn)]
    channel.send_to_switch(FlowMod(
        match=Match.exact_from_packet(packet, in_port=1),
        actions=(OutputAction(2),), buffer_id=packet_in.buffer_id))
    sim.run(until=sim.now + 1.0)
    assert delivered[2] == [packet]


def test_usage_percent_counts_apply_thread(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    for i in range(20):
        channel.send_to_switch(FlowMod(match=Match(ip_src=f"10.2.0.{i}"),
                                       actions=(OutputAction(2),)))
    sim.run(until=0.01)
    usage = switch.usage_percent()
    assert usage > switch.config.baseline_usage_percent


def test_expiry_sweep_emits_events(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    expired = []
    switch.events.on("flow_expired", lambda t, e: expired.append(e))
    channel.send_to_switch(FlowMod(match=Match(ip_src="10.3.0.1"),
                                   actions=(OutputAction(2),),
                                   hard_timeout=0.05))
    sim.run(until=0.5)
    assert len(expired) == 1
    switch.shutdown()


def test_port_counters(sim):
    switch, channel, received, delivered, cables = _harness(sim)
    packet = _packet()
    cables[0].forward.send(packet, 1000)
    sim.run(until=sim.now + 1.0)
    port1 = switch.datapath.ports[1]
    assert port1.rx_packets == 1
    assert port1.rx_bytes == packet.wire_len


def test_flow_mod_delete_removes_rules(sim):
    from repro.openflow import FlowModCommand
    switch, channel, received, delivered, cables = _harness(sim)
    for i in range(3):
        channel.send_to_switch(FlowMod(match=Match(ip_src=f"10.7.0.{i}"),
                                       actions=(OutputAction(2),)))
    sim.run(until=sim.now + 1.0)
    assert len(switch.flow_table) == 3
    deleted = []
    switch.events.on("flows_deleted",
                     lambda t, match, count: deleted.append(count))
    channel.send_to_switch(FlowMod(match=Match(),
                                   command=FlowModCommand.DELETE))
    sim.run(until=sim.now + 1.0)
    assert len(switch.flow_table) == 0
    assert deleted == [3]


def test_flow_mod_delete_strict_requires_priority(sim):
    from repro.openflow import FlowModCommand
    switch, channel, received, delivered, cables = _harness(sim)
    channel.send_to_switch(FlowMod(match=Match(ip_src="10.8.0.1"),
                                   actions=(OutputAction(2),),
                                   priority=7))
    sim.run(until=sim.now + 1.0)
    channel.send_to_switch(FlowMod(match=Match(ip_src="10.8.0.1"),
                                   command=FlowModCommand.DELETE_STRICT,
                                   priority=8))
    sim.run(until=sim.now + 1.0)
    assert len(switch.flow_table) == 1      # priority mismatch: kept
    channel.send_to_switch(FlowMod(match=Match(ip_src="10.8.0.1"),
                                   command=FlowModCommand.DELETE_STRICT,
                                   priority=7))
    sim.run(until=sim.now + 1.0)
    assert len(switch.flow_table) == 0
