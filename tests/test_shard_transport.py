"""Shard wire-transport tests: TransportSpec parsing, the framed codec
(round-trip property, golden frame, pickle escape), cut-through relay,
the shm ring, crash cleanup, and transport-blind cache keying."""

from __future__ import annotations

import multiprocessing
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import buffer_256
from repro.openflow.actions import (ControllerAction, DropAction,
                                    OutputAction)
from repro.openflow.constants import OFP_NO_BUFFER, FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import (BarrierRequest, EchoRequest, FlowMod,
                                     FlowRemoved, Hello, PacketIn,
                                     PacketOut, SetConfig)
from repro.packets.ethernet import EthernetHeader
from repro.packets.ipv4 import IPv4Header
from repro.packets.packet import Packet
from repro.packets.tcp import TCPHeader
from repro.packets.udp import UDPHeader
from repro.parallel import SweepJob, register_jobs, task_key
from repro.scenarios import parse_scenario
from repro.shard import (MAGIC_FRAME, PER_SWITCH, RelayHub, ShardChannel,
                         ShardSpec, ShmRing, StringTable, TransportSpec,
                         WIRE_VERSION, decode_frame, decode_round,
                         emit_round, encode_round, execute_sharded,
                         parse_transport, scan_round)
from repro.shard.transport import TAG_PICKLE
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


# ---------------------------------------------------------------------------
# TransportSpec parsing and validation
# ---------------------------------------------------------------------------

def test_parse_transport():
    assert parse_transport("pickle") == TransportSpec("pickle")
    assert parse_transport("framed") == TransportSpec("framed")
    assert parse_transport("shm") == TransportSpec("shm")
    assert parse_transport("shm:256") == TransportSpec("shm", 256)
    assert parse_transport("shm:256").name == "shm:256"
    assert parse_transport("shm").name == "shm"
    spec = TransportSpec("shm", 256)
    assert parse_transport(spec) is spec
    with pytest.raises(ValueError):
        parse_transport("framed:2")
    with pytest.raises(ValueError):
        parse_transport("shm:tiny")
    with pytest.raises(ValueError):
        parse_transport("carrier-pigeon")
    with pytest.raises(ValueError):
        TransportSpec("shm", 0)


def test_shard_spec_carries_transport():
    spec = ShardSpec(mode="per-switch", transport="shm:64")
    assert spec.transport == TransportSpec("shm", 64)
    assert PER_SWITCH.with_transport("pickle").transport.codec == "pickle"


# ---------------------------------------------------------------------------
# Codec round-trip property (hypothesis)
# ---------------------------------------------------------------------------

_MACS = st.sampled_from(["00:00:00:00:00:01", "00:00:00:00:00:02",
                         "aa:bb:cc:dd:ee:0f"])
_IPS = st.sampled_from(["10.0.0.1", "10.0.0.2", "192.168.7.9"])


@st.composite
def _packets(draw):
    eth = EthernetHeader(draw(_MACS), draw(_MACS), 0x0800)
    ip = l4 = None
    if draw(st.booleans()):
        ip = IPv4Header(draw(_IPS), draw(_IPS),
                        protocol=draw(st.sampled_from([6, 17])),
                        ttl=draw(st.integers(0, 255)),
                        identification=draw(st.integers(0, 0xFFFF)))
        kind = draw(st.sampled_from(["udp", "tcp", None]))
        if kind == "udp":
            l4 = UDPHeader(draw(st.integers(0, 65535)), 443)
        elif kind == "tcp":
            l4 = TCPHeader(draw(st.integers(0, 65535)), 80,
                           seq=draw(st.integers(0, 2**32 - 1)),
                           flags=draw(st.integers(0, 255)))
    return Packet(eth, ip, l4,
                  payload_len=draw(st.integers(0, 1500)),
                  flow_id=draw(st.one_of(st.none(),
                                         st.integers(0, 10**6))),
                  seq_in_flow=draw(st.one_of(st.none(),
                                             st.integers(0, 1000))),
                  created_at=draw(st.one_of(st.none(),
                                            st.floats(0, 100))),
                  uid=draw(st.integers(1, 2**48)))


@st.composite
def _items(draw):
    choice = draw(st.integers(0, 5))
    if choice <= 1:
        return draw(_packets())
    if choice == 2:
        return PacketIn(packet=draw(_packets()),
                        in_port=draw(st.integers(0, 64)),
                        buffer_id=draw(st.sampled_from([OFP_NO_BUFFER,
                                                        1, 77])),
                        data_len=draw(st.integers(0, 1500)),
                        xid=draw(st.integers(0, 2**32)))
    if choice == 3:
        return FlowMod(match=Match(in_port=draw(st.integers(0, 64)),
                                   eth_dst=draw(_MACS),
                                   ip_dst=draw(_IPS)),
                       actions=(OutputAction(draw(st.integers(0, 64))),),
                       command=draw(st.sampled_from(list(FlowModCommand))),
                       priority=draw(st.integers(0, 0xFFFF)),
                       cookie=draw(st.integers(0, 2**40)),
                       xid=draw(st.integers(0, 2**32)))
    if choice == 4:
        return PacketOut(actions=draw(st.sampled_from(
                             [(DropAction(),), (OutputAction(3),),
                              (ControllerAction(128), OutputAction(1))])),
                         buffer_id=9, in_port=draw(st.integers(0, 64)),
                         xid=draw(st.integers(0, 2**32)))
    return draw(st.sampled_from([
        Hello(xid=3), EchoRequest(payload_len=8, xid=4),
        SetConfig(miss_send_len=128, xid=5), BarrierRequest(xid=6),
        FlowRemoved(match=Match(in_port=1), cookie=2, priority=7,
                    reason=1, duration=1.5, packet_count=10,
                    byte_count=999, xid=7),
    ]))


_MESSAGES = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1e6),
              st.integers(0, 65535), st.integers(0, 2**32 - 1), _items()),
    max_size=6)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(batches=st.lists(_MESSAGES, min_size=1, max_size=4))
def test_codec_round_trip_property(batches):
    """decode(encode(batch)) == batch, across consecutive rounds on one
    table pair (string-table growth included), empty rounds and all."""
    enc, dec = StringTable(), StringTable()
    for batch in batches:
        frame = encode_round(batch, enc)
        decoded, end = decode_round(frame, dec)
        assert end == len(frame)
        assert decoded == batch


def test_codec_empty_round():
    enc, dec = StringTable(), StringTable()
    frame = encode_round([], enc)
    assert decode_round(frame, dec) == ([], len(frame))


def test_codec_max_scalars():
    pkt = Packet(EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02"),
                 uid=2**63)
    batch = [(1.5e5, 65535, 2**32 - 1, pkt)]
    enc, dec = StringTable(), StringTable()
    assert decode_round(encode_round(batch, enc), dec)[0] == batch


def test_codec_pickle_escape():
    """Items the fast path does not know still travel, per-item pickled."""
    batch = [(0.1, 0, 1, {"stats": (1, 2, 3)}),
             (0.2, 0, 2, Hello(xid=9))]
    enc, dec = StringTable(), StringTable()
    frame = encode_round(batch, enc)
    assert decode_round(frame, dec)[0] == batch
    _, raw_messages, _ = scan_round(frame)
    assert raw_messages[0][3][0] == TAG_PICKLE       # the dict escaped
    # While an in-range FlowMod never escapes.
    fm = FlowMod(match=Match(in_port=1), actions=(DropAction(),), xid=1)
    _, raw_messages, _ = scan_round(
        encode_round([(0.0, 0, 0, fm)], StringTable()))
    assert raw_messages[0][3][0] != TAG_PICKLE


# ---------------------------------------------------------------------------
# Golden frame — change-detects the wire format
# ---------------------------------------------------------------------------

def _golden_batch():
    eth = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02", 0x0800)
    ip = IPv4Header("10.0.0.1", "10.0.0.2", protocol=17, ttl=64,
                    identification=7)
    pkt = Packet(eth, ip, UDPHeader(5000, 443), payload_len=512,
                 flow_id=3, seq_in_flow=0, created_at=0.25, uid=42)
    fm = FlowMod(match=Match(in_port=2, eth_dst="00:00:00:00:00:02"),
                 actions=(OutputAction(1),), priority=0x8000,
                 xid=11, sent_at=0.5)
    return [(0.375, 1, 9, pkt), (0.5, 0, 10, fm)]


#: The byte-exact encoding of ``_golden_batch()`` on a fresh table,
#: captured at WIRE_VERSION 1.  Any codec change that reshapes these
#: bytes must bump WIRE_VERSION and re-pin.
GOLDEN_FRAME_HEX = (
    "04001130303a30303a30303a30303a30303a3031011130303a30303a30303a3030"
    "3a30303a3032020831302e302e302e31030831302e302e302e3202000000000000"
    "d83f01000900000049000000013b2a000000000000000000000001000000000802"
    "0000000300000011400007008813bb010002000003000000000000000000000000"
    "00d03f00000000000000000000000000000000000000000000e03f00000a000000"
    "3c00000005010b00000000000000000000000000e03f000000000000000000ffff"
    "ffff0000000000000000000000000000000000808002000305020103010101"
)


def test_golden_frame_pins_wire_format():
    """Byte-exact pin of one representative frame.

    If this fails, the wire format changed: bump ``WIRE_VERSION`` in
    ``repro/shard/transport.py`` and regenerate the constant with::

        PYTHONPATH=src python -c "import tests.test_shard_transport as t; \\
            print(t._current_golden_hex())"
    """
    assert WIRE_VERSION == 1
    assert _current_golden_hex() == GOLDEN_FRAME_HEX


def _current_golden_hex() -> str:
    return encode_round(_golden_batch(), StringTable()).hex()


def test_frame_header_magic_and_version():
    from repro.shard.transport import encode_reply
    frame = encode_reply(_golden_batch(), 0.75, 5, StringTable())
    assert frame[0] == MAGIC_FRAME
    assert frame[1] == WIRE_VERSION
    decoded = decode_frame(frame, StringTable())
    assert decoded[0] == "advanced"
    messages, next_time, completed = decoded[1]
    assert (next_time, completed) == (0.75, 5)
    assert messages == _golden_batch()


def test_wire_version_mismatch_rejected():
    from repro.shard.transport import encode_reply
    frame = bytearray(encode_reply([], 0.0, None, StringTable()))
    frame[1] = WIRE_VERSION + 1
    with pytest.raises(ValueError, match="wire version"):
        decode_frame(bytes(frame), StringTable())


# ---------------------------------------------------------------------------
# Cut-through relay: scan, gossip, splice
# ---------------------------------------------------------------------------

def test_scan_emit_relay_round_trip():
    """Worker-encoded rounds survive scan → adopt → splice verbatim."""
    worker_enc = StringTable(offset=1, stride=3)   # shard 1 of 3
    batch = _golden_batch()
    frame = encode_round(batch, worker_enc)
    minted, raw_messages, end = scan_round(frame)
    assert end == len(frame)
    assert [m[:3] for m in raw_messages] == [m[:3] for m in batch]
    # The coordinator relays the minted pairs, never re-interns refs.
    gossip = StringTable()
    gossip.adopt(minted)
    spliced = emit_round(raw_messages, gossip)
    decoded, _ = decode_round(spliced, StringTable())
    assert decoded == batch


def test_namespaced_tables_never_collide():
    a = StringTable(offset=0, stride=2)
    b = StringTable(offset=1, stride=2)
    for table, strings in ((a, ["x", "y"]), (b, ["x", "z"])):
        for text in strings:
            table.ref(text)
    assert not (set(a.ids.values()) & set(b.ids.values()))


def test_relay_hub_skips_source():
    hub = RelayHub()
    tables = [hub.register() for _ in range(3)]
    hub.publish([(4, "aa")], source=1)
    assert tables[0].pending == [(4, "aa")]
    assert tables[1].pending == []
    assert tables[2].pending == [(4, "aa")]


def test_channel_relay_end_to_end():
    """Two parent/worker channel pairs wired through one hub: worker A's
    reply is scanned (never decoded) by the coordinator and spliced into
    an advance that worker B decodes back to equal objects."""
    hub = RelayHub()
    conn_a_parent, conn_a_worker = multiprocessing.Pipe(duplex=True)
    conn_b_parent, conn_b_worker = multiprocessing.Pipe(duplex=True)
    parent_a = ShardChannel(conn_a_parent, "framed", role="parent",
                            hub=hub, shard_index=0)
    parent_b = ShardChannel(conn_b_parent, "framed", role="parent",
                            hub=hub, shard_index=1)
    worker_a = ShardChannel(conn_a_worker, "framed", role="worker",
                            shard_index=0, n_shards=2)
    worker_b = ShardChannel(conn_b_worker, "framed", role="worker",
                            shard_index=1, n_shards=2)
    batch = _golden_batch()
    worker_a.send_reply(batch, 0.625, None)
    tag, (raw_messages, next_time, completed) = parent_a.recv()
    assert (tag, next_time, completed) == ("advanced", 0.625, None)
    parent_b.send_advance(0.75, raw_messages, True)
    assert worker_b.recv() == ("advance", 0.75, batch, True)
    assert parent_a.stats.frames_in == 1
    assert parent_b.stats.frames_out == 1
    for conn in (conn_a_parent, conn_a_worker, conn_b_parent,
                 conn_b_worker):
        conn.close()


# ---------------------------------------------------------------------------
# The shm ring
# ---------------------------------------------------------------------------

def test_shm_ring_wraps_around():
    ring = ShmRing(16)
    try:
        assert ring.try_write(b"0123456789")        # pos 0..10
        assert ring.read(10) == b"0123456789"
        assert ring.try_write(b"abcdefghij")        # wraps at 16
        assert ring.read(10) == b"abcdefghij"
        assert not ring.try_write(b"x" * 17)        # can never fit
    finally:
        ring.close()
        ring.unlink()


def test_channel_ring_and_overflow_fallback():
    ring = ShmRing(128)
    conn_parent, conn_worker = multiprocessing.Pipe(duplex=True)
    try:
        parent = ShardChannel(conn_parent, "shm", send_ring=ring,
                              role="parent", shard_index=0)
        worker = ShardChannel(conn_worker, "shm", recv_ring=ring,
                              role="worker", shard_index=0, n_shards=1)
        parent.send_advance(0.5, [], False)          # small: rides the ring
        assert worker.recv() == ("advance", 0.5, [], False)
        assert parent.stats.ring_overflows == 0
        # A batch whose frame exceeds the 128-byte ring falls back to the
        # pipe inline; raw relay tuples come from a real worker encoding.
        batch = [(0.1, 0, i, _golden_batch()[0][3]) for i in range(8)]
        minted, raw_messages, _ = scan_round(
            encode_round(batch, StringTable()))
        parent._enc.adopt(minted)
        parent.send_advance(0.6, raw_messages, True)
        tag, t_end, messages, inclusive = worker.recv()
        assert (tag, t_end, inclusive) == ("advance", 0.6, True)
        assert messages == batch
        assert parent.stats.ring_overflows == 1
    finally:
        conn_parent.close()
        conn_worker.close()
        ring.close()
        ring.unlink()


def _shm_segments() -> set:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return set()
    return set(os.listdir(shm_dir))


def test_shm_run_leaves_no_segments():
    before = _shm_segments()
    spec = (parse_scenario("line:2")
            .with_shard(PER_SWITCH.with_transport("shm:64")))
    workload = single_packet_flows(mbps(4.0), n_flows=6,
                                   rng=RandomStreams(3))
    execute_sharded(buffer_256(), workload, seed=3, scenario=spec,
                    transport="fork")
    assert _shm_segments() <= before


# ---------------------------------------------------------------------------
# Worker-crash cleanup (satellite regression)
# ---------------------------------------------------------------------------

def test_worker_crash_cleans_up_fleet(monkeypatch):
    """Killing one fork worker mid-run raises, terminates the siblings,
    and leaves no shm segment behind."""
    from repro.shard import coordinator as coord

    original = coord.ShardCoordinator.run_until

    def sabotage(self, deadline):
        self.handles[1]._process.kill()
        return original(self, deadline)

    monkeypatch.setattr(coord.ShardCoordinator, "run_until", sabotage)
    before = _shm_segments()
    spec = (parse_scenario("line:2")
            .with_shard(PER_SWITCH.with_transport("shm:64")))
    workload = single_packet_flows(mbps(4.0), n_flows=6,
                                   rng=RandomStreams(3))
    with pytest.raises(RuntimeError, match="worker died|worker failed"):
        execute_sharded(buffer_256(), workload, seed=3, scenario=spec,
                        transport="fork")
    assert _shm_segments() <= before
    for child in multiprocessing.active_children():
        assert not child.is_alive()


# ---------------------------------------------------------------------------
# Cache keying: transports share entries, ShardSpec changes split
# ---------------------------------------------------------------------------

_FACTORY_FLOWS = 10


def _factory():
    from repro.experiments import workload_a_factory
    return workload_a_factory(n_flows=_FACTORY_FLOWS)


def _job(scenario):
    job = SweepJob(config=buffer_256(), factory=_factory(),
                   rates_mbps=(20,), repetitions=1, base_seed=1,
                   scenario=scenario)
    register_jobs([job])
    return job


def _key_of(job):
    return task_key(job, job.tasks()[0])


def test_transports_share_cache_entries():
    line = parse_scenario("line:2")
    keys = {
        _key_of(_job(line.with_shard(PER_SWITCH.with_transport(name))))
        for name in ("pickle", "framed", "shm", "shm:256")
    }
    assert len(keys) == 1
    tokens = {
        PER_SWITCH.with_transport(name).cache_token()
        for name in ("pickle", "framed", "shm", "shm:256")
    }
    assert len(tokens) == 1
    # While a real sharding change still splits the key.
    assert (_key_of(_job(line.with_shard(
        PER_SWITCH.with_workers(2).with_transport("shm"))))
        != _key_of(_job(line.with_shard(PER_SWITCH))))
