"""Tests for series, captures, samplers and the delay tracker."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (DelayTracker, GaugeSampler, LinkCapture, Summary,
                           TimeSeries, UtilizationSampler, percentile,
                           summarize)
from repro.netsim import Link
from repro.openflow import FlowMod, PacketIn, PacketOut
from repro.packets import udp_packet
from repro.simkit import EventEmitter, ServiceStation, mbps
from repro.trafficgen import FlowSpec


def _packet(flow=0, seq=0):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.0.{flow + 1}", "10.0.0.2", 1000 + flow, 2000,
                      flow_id=flow, seq_in_flow=seq)


# ---------------------------------------------------------------------------
# Summary / percentile
# ---------------------------------------------------------------------------

def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0 and summary.maximum == 4.0


def test_summarize_empty_is_zeroes():
    assert summarize([]) == Summary.empty()


@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
def test_summarize_matches_statistics_module(values):
    summary = summarize(values)
    assert summary.mean == pytest.approx(statistics.fmean(values))
    assert summary.std == pytest.approx(statistics.pstdev(values), abs=1e-6)


def test_percentile_interpolates():
    data = [10.0, 20.0, 30.0, 40.0]
    assert percentile(data, 0) == 10.0
    assert percentile(data, 100) == 40.0
    assert percentile(data, 50) == pytest.approx(25.0)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------

def test_timeseries_append_and_window():
    series = TimeSeries("t")
    for i in range(5):
        series.add(float(i), float(i * 10))
    window = series.window(1.0, 4.0)
    assert window.values == (10.0, 20.0, 30.0)
    assert series.mean() == pytest.approx(20.0)
    assert series.max() == 40.0
    assert series.last() == 40.0


def test_timeseries_rejects_non_monotonic_times():
    series = TimeSeries()
    series.add(1.0, 0.0)
    with pytest.raises(ValueError):
        series.add(0.5, 0.0)


def test_timeseries_empty_stats():
    series = TimeSeries()
    assert series.mean() == 0.0
    assert series.max() == 0.0
    assert series.last() is None


# ---------------------------------------------------------------------------
# LinkCapture
# ---------------------------------------------------------------------------

def test_capture_classifies_openflow_kinds(sim):
    link = Link(sim, "l", mbps(100))
    link.connect(lambda item: None)
    capture = LinkCapture(link)
    link.send(PacketIn(packet=_packet(), buffer_id=1, data_len=128), 200)
    link.send(FlowMod(), 130)
    link.send(_packet(), 1000)
    assert capture.count("packetin") == 1
    assert capture.count("flowmod") == 1
    assert capture.count("data") == 1
    assert capture.bytes() == 1330
    assert capture.bytes("flowmod") == 130
    sim.run()


def test_capture_windowed_accounting(sim):
    link = Link(sim, "l", mbps(100))
    link.connect(lambda item: None)
    capture = LinkCapture(link)
    sim.schedule(1.0, link.send, "a", 100)
    sim.schedule(2.0, link.send, "b", 200)
    sim.schedule(3.0, link.send, "c", 400)
    sim.run()
    assert capture.bytes_within(1.5, 3.5) == 600
    assert capture.count_within(0.0, 1.5) == 1
    assert capture.first_time() == 1.0
    assert capture.last_time() == 3.0
    assert capture.active_window() == pytest.approx(2.0)


def test_capture_load_computation(sim):
    link = Link(sim, "l", mbps(100))
    link.connect(lambda item: None)
    capture = LinkCapture(link)
    link.send("x", 125_000)           # 1 Mbit
    assert capture.load_mbps(window=1.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        capture.load_bps(0)
    sim.run()


def test_capture_clear(sim):
    link = Link(sim, "l", mbps(100))
    link.connect(lambda item: None)
    capture = LinkCapture(link)
    link.send("x", 100)
    capture.clear()
    assert capture.bytes() == 0
    assert capture.count() == 0
    sim.run()


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------

def test_gauge_sampler_polls_on_interval(sim):
    values = iter(range(100))
    sampler = GaugeSampler(sim, lambda now: next(values), interval=0.1)
    sim.run(until=0.35)
    assert sampler.series.values == (0.0, 1.0, 2.0)
    sampler.stop()
    sim.run(until=1.0)
    assert len(sampler.series) == 3


def test_utilization_sampler_windows(sim):
    station = ServiceStation(sim, "s", servers=1)
    sampler = UtilizationSampler(sim, station, interval=1.0)
    station.submit(None, 0.5)          # busy 0.5s in first window
    sim.run(until=2.0)
    assert sampler.series.values[0] == pytest.approx(50.0)
    assert sampler.series.values[1] == pytest.approx(0.0)


def test_utilization_sampler_sums_stations(sim):
    stations = [ServiceStation(sim, f"s{i}", servers=1) for i in range(2)]
    for station in stations:
        station.submit(None, 0.5)
    sampler = UtilizationSampler(sim, stations, interval=1.0,
                                 baseline_percent=10.0)
    sim.run(until=1.5)
    # Each station was busy 0.5s in the 1s window: 50% + 50% + baseline.
    assert sampler.series.values[0] == pytest.approx(110.0)


def test_sampler_validation(sim):
    with pytest.raises(ValueError):
        GaugeSampler(sim, lambda now: 0, interval=0)
    with pytest.raises(ValueError):
        UtilizationSampler(sim, [], interval=1.0)


# ---------------------------------------------------------------------------
# DelayTracker
# ---------------------------------------------------------------------------

def _tracker_with_emitter(n_packets=2):
    flows = {0: FlowSpec(flow_id=0, five_tuple=_packet(0).five_tuple,
                         n_packets=n_packets)}
    tracker = DelayTracker(flows)
    emitter = EventEmitter()
    tracker.attach(emitter)
    return tracker, emitter


def test_delay_tracker_setup_delay():
    tracker, emitter = _tracker_with_emitter(n_packets=1)
    packet = _packet(0, 0)
    emitter.emit("packet_ingress", 1.0, packet, 1)
    emitter.emit("packet_egress", 1.5, packet, 2)
    record = tracker.records[0]
    assert record.setup_delay == pytest.approx(0.5)
    assert record.completed
    assert tracker.completed_flows == 1


def test_delay_tracker_controller_delay_uses_first_reply():
    tracker, emitter = _tracker_with_emitter(n_packets=1)
    packet = _packet(0, 0)
    message = PacketIn(packet=packet, buffer_id=1, data_len=128)
    emitter.emit("packet_ingress", 1.0, packet, 1)
    emitter.emit("packet_in_sent", 1.1, message)
    flow_mod = FlowMod(in_reply_to=message.xid)
    packet_out = PacketOut(buffer_id=1, in_reply_to=message.xid)
    emitter.emit("reply_arrived", 1.4, flow_mod)
    emitter.emit("reply_arrived", 1.6, packet_out)
    record = tracker.records[0]
    assert record.controller_delay == pytest.approx(0.3)
    assert len(tracker.all_rtts) == 1   # second reply of the pair ignored


def test_delay_tracker_switch_delay_is_difference():
    tracker, emitter = _tracker_with_emitter(n_packets=1)
    packet = _packet(0, 0)
    message = PacketIn(packet=packet, buffer_id=1, data_len=128)
    emitter.emit("packet_ingress", 1.0, packet, 1)
    emitter.emit("packet_in_sent", 1.1, message)
    emitter.emit("reply_arrived", 1.4,
                 FlowMod(in_reply_to=message.xid))
    emitter.emit("packet_egress", 1.8, packet, 2)
    record = tracker.records[0]
    assert record.setup_delay == pytest.approx(0.8)
    assert record.switch_delay == pytest.approx(0.5)


def test_delay_tracker_forwarding_delay_needs_all_packets():
    tracker, emitter = _tracker_with_emitter(n_packets=2)
    first, second = _packet(0, 0), _packet(0, 1)
    emitter.emit("packet_ingress", 1.0, first, 1)
    emitter.emit("packet_ingress", 1.2, second, 1)
    emitter.emit("packet_egress", 1.5, first, 2)
    assert tracker.records[0].forwarding_delay is None
    emitter.emit("packet_egress", 2.5, second, 2)
    assert tracker.records[0].forwarding_delay == pytest.approx(1.5)


def test_delay_tracker_counts_packet_ins_per_flow():
    tracker, emitter = _tracker_with_emitter(n_packets=3)
    for seq in range(3):
        packet = _packet(0, seq)
        emitter.emit("packet_in_sent", float(seq),
                     PacketIn(packet=packet, buffer_id=seq + 1,
                              data_len=128))
    assert tracker.packet_ins_per_flow() == [3]


def test_delay_tracker_ignores_untracked_packets():
    tracker, emitter = _tracker_with_emitter()
    alien = _packet(flow=77)
    emitter.emit("packet_ingress", 1.0, alien, 1)
    emitter.emit("reply_arrived", 1.0, FlowMod(in_reply_to=9999))
    assert tracker.records[0].first_ingress is None
