"""Tests for testbed assembly and single-run execution."""

from __future__ import annotations

import pytest

from repro.core import (FlowGranularityBuffer, NoBuffer,
                        PacketGranularityBuffer, buffer_256, flow_buffer_256,
                        no_buffer)
from repro.experiments import (PORT_HOST1, PORT_HOST2, build_testbed,
                               default_calibration, run_once)
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


def test_build_testbed_wires_everything(small_workload_a):
    testbed = build_testbed(buffer_256(), small_workload_a)
    assert isinstance(testbed.mechanism, PacketGranularityBuffer)
    assert set(testbed.switch.datapath.ports) == {PORT_HOST1, PORT_HOST2}
    assert testbed.topology.node("ovs") is testbed.switch
    assert testbed.topology.node("controller") is testbed.controller
    assert testbed.metrics.delay_tracker.total_flows == 40


def test_build_testbed_mechanism_selection(small_workload_a):
    assert isinstance(build_testbed(no_buffer(), small_workload_a).mechanism,
                      NoBuffer)
    assert isinstance(
        build_testbed(flow_buffer_256(), small_workload_a).mechanism,
        FlowGranularityBuffer)


def test_run_once_completes_all_flows(small_workload_a):
    result = run_once(buffer_256(), small_workload_a)
    assert result.completed_flows == result.total_flows == 40
    assert result.packets_dropped == 0
    assert result.packet_in_count == 40          # one per new flow
    assert result.flow_mod_count == 40
    assert result.packet_out_count == 40


def test_run_once_measures_delays(small_workload_a):
    result = run_once(buffer_256(), small_workload_a)
    assert len(result.setup_delays) == 40
    assert len(result.controller_delays) == 40
    assert all(d > 0 for d in result.setup_delays)
    assert all(d > 0 for d in result.controller_delays)
    # Switch delay = setup - controller must be positive here.
    assert all(d > 0 for d in result.switch_delays)


def test_run_once_no_buffer_has_zero_occupancy(small_workload_a):
    result = run_once(no_buffer(), small_workload_a)
    assert result.buffer_peak_units == 0
    assert result.buffer_avg_units == 0.0


def test_run_once_buffered_loads_are_lower(small_workload_a):
    buffered = run_once(buffer_256(), small_workload_a)
    unbuffered = run_once(no_buffer(), small_workload_a)
    assert buffered.control_load_up_mbps < unbuffered.control_load_up_mbps / 3
    assert (buffered.control_load_down_mbps
            < unbuffered.control_load_down_mbps / 3)


def test_run_once_is_deterministic(small_workload_a):
    first = run_once(buffer_256(), small_workload_a, seed=5)
    second = run_once(buffer_256(), small_workload_a, seed=5)
    assert first.control_load_up_mbps == second.control_load_up_mbps
    assert first.setup_delays == second.setup_delays
    assert first.packet_in_count == second.packet_in_count


def test_run_once_respects_calibration(small_workload_a):
    from repro.switchsim import SwitchConfig
    from repro.experiments import TestbedCalibration
    from repro.controllersim import ControllerConfig
    slow = TestbedCalibration(
        switch=SwitchConfig(upcall_latency=0.005),
        controller=ControllerConfig())
    fast_result = run_once(buffer_256(), small_workload_a)
    slow_result = run_once(buffer_256(), small_workload_a, calibration=slow)
    assert (slow_result.setup_delay_summary().mean
            > fast_result.setup_delay_summary().mean + 0.004)


def test_packets_arrive_at_host2():
    workload = single_packet_flows(mbps(50), n_flows=10,
                                   rng=RandomStreams(1))
    testbed = build_testbed(buffer_256(), workload)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    assert len(testbed.host2.received) == 10
    testbed.shutdown()


def test_shutdown_stops_periodic_work(small_workload_a):
    testbed = build_testbed(buffer_256(), small_workload_a)
    testbed.sim.run(until=0.05)
    testbed.shutdown()
    # After shutdown the only queued items should drain quickly and stop.
    testbed.sim.run(until=10.0)
    remaining = testbed.sim.pending_count()
    assert remaining == 0


def test_enable_tracing_records_protocol_events(small_workload_a):
    testbed = build_testbed(buffer_256(), small_workload_a, seed=9)
    log = testbed.enable_tracing()
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    assert log.count(source="switch", kind="table_miss") == 40
    assert log.count(source="switch", kind="packet_in_sent") == 40
    assert log.count(source="controller", kind="packet_in_received") == 40
    assert log.count(source="switch", kind="flow_installed") == 40
    assert log.count(source="switch", kind="packet_egress") == 40
    # Records are time-ordered and renderable.
    times = [r.time for r in log.records]
    assert times == sorted(times)
    assert "table_miss" in log.dump(limit=200)
    testbed.shutdown()


def test_python_dash_m_repro_entrypoint():
    import subprocess
    import sys
    result = subprocess.run(
        [sys.executable, "-m", "repro", "table1"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "Table I" in result.stdout
