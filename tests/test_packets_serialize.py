"""Round-trip tests for byte-level packet serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.packets import (DecodeError, EthernetHeader, Packet,
                           decode_packet, encode_packet,
                           internet_checksum, tcp_packet, udp_packet,
                           tcp_control_packet, FLAG_SYN, FLAG_ACK)


def test_checksum_known_vector():
    # Classic RFC 1071 example data.
    data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
    # A header with a correct checksum sums to zero.
    assert internet_checksum(data) == 0


def test_checksum_odd_length_padding():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


def test_udp_packet_round_trip():
    original = udp_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                          "192.168.1.10", "10.20.30.40", 1234, 53,
                          frame_len=500)
    wire = encode_packet(original)
    assert len(wire) == original.wire_len
    decoded = decode_packet(wire)
    assert decoded.eth == original.eth
    assert decoded.ip == original.ip
    assert decoded.l4 == original.l4
    assert decoded.payload_len == original.payload_len


def test_tcp_packet_round_trip():
    original = tcp_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                          "1.2.3.4", "5.6.7.8", 40000, 443,
                          flags=FLAG_SYN | FLAG_ACK, seq=12345, ack=999,
                          frame_len=900)
    decoded = decode_packet(encode_packet(original))
    assert decoded.l4 == original.l4
    assert decoded.ip == original.ip


def test_minimum_frame_is_padded():
    original = tcp_control_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                                  "1.2.3.4", "5.6.7.8", 1, 2,
                                  flags=FLAG_ACK)
    wire = encode_packet(original)
    assert len(wire) == 60          # Ethernet minimum
    decoded = decode_packet(wire)
    assert decoded.payload_len == 0  # padding is not payload
    assert decoded.l4 == original.l4


def test_non_ip_frame_round_trip():
    eth = EthernetHeader("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                         ethertype=0x0806)
    original = Packet(eth=eth, payload_len=46)
    decoded = decode_packet(encode_packet(original))
    assert decoded.eth == original.eth
    assert decoded.ip is None


def test_truncated_frames_rejected():
    original = udp_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                          "1.2.3.4", "5.6.7.8", 1, 2)
    wire = encode_packet(original)
    with pytest.raises(DecodeError):
        decode_packet(wire[:10])
    with pytest.raises(DecodeError):
        decode_packet(wire[:20])
    with pytest.raises(DecodeError):
        decode_packet(wire[:38])


def test_corrupted_ip_header_rejected():
    wire = bytearray(encode_packet(udp_packet(
        "aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
        "1.2.3.4", "5.6.7.8", 1, 2)))
    wire[22] ^= 0xFF          # flip TTL: checksum now wrong
    with pytest.raises(DecodeError):
        decode_packet(bytes(wire))


@given(src=st.integers(0, (1 << 32) - 1), dst=st.integers(0, (1 << 32) - 1),
       sport=st.integers(0, 0xFFFF), dport=st.integers(0, 0xFFFF),
       frame_len=st.integers(60, 1514), dscp=st.integers(0, 63),
       ttl=st.integers(1, 255))
def test_udp_round_trip_property(src, dst, sport, dport, frame_len, dscp,
                                 ttl):
    from repro.packets import IPv4Header, UDPHeader, int_to_ip
    eth = EthernetHeader("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02")
    ip = IPv4Header(int_to_ip(src), int_to_ip(dst), protocol=17,
                    ttl=ttl, dscp=dscp)
    l4 = UDPHeader(sport, dport)
    original = Packet(eth=eth, ip=ip, l4=l4, payload_len=frame_len - 42)
    decoded = decode_packet(encode_packet(original))
    assert decoded.eth == original.eth
    assert decoded.ip == original.ip
    assert decoded.l4 == original.l4
    assert decoded.payload_len == original.payload_len


@given(seq=st.integers(0, (1 << 32) - 1), ack=st.integers(0, (1 << 32) - 1),
       flags=st.integers(0, 0xFF), window=st.integers(0, 0xFFFF))
def test_tcp_round_trip_property(seq, ack, flags, window):
    from repro.packets import IPv4Header, TCPHeader
    eth = EthernetHeader("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02")
    ip = IPv4Header("9.9.9.9", "8.8.8.8", protocol=6)
    l4 = TCPHeader(5, 6, seq=seq, ack=ack, flags=flags, window=window)
    original = Packet(eth=eth, ip=ip, l4=l4, payload_len=100)
    decoded = decode_packet(encode_packet(original))
    assert decoded.l4 == original.l4


@given(payload=st.integers(0, 1460))
def test_encoded_length_always_matches_wire_len(payload):
    original = udp_packet("aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02",
                          "1.2.3.4", "5.6.7.8", 1, 2,
                          frame_len=max(60, 42 + payload))
    assert len(encode_packet(original)) == original.wire_len
