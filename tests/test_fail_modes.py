"""Tests for connection-interruption behaviour (fail-secure/standalone)."""

from __future__ import annotations

import pytest

from repro.controllersim import ControllerConfig
from repro.core import buffer_256
from repro.experiments import TestbedCalibration, build_testbed
from repro.simkit import RandomStreams, mbps
from repro.switchsim import SwitchConfig
from repro.trafficgen import single_packet_flows


def _calibration(fail_mode="secure", probe=0.2, timeout=0.5):
    return TestbedCalibration(
        switch=SwitchConfig(fail_mode=fail_mode,
                            connection_probe_interval=probe,
                            connection_timeout=timeout,
                            buffer_ageout=0.0),
        controller=ControllerConfig())


def _dead_controller_testbed(fail_mode, n_flows=6, send_at=1.5, seed=50):
    """Traffic arrives only after the controller has been declared dead."""
    workload = single_packet_flows(mbps(20), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    testbed = build_testbed(buffer_256(), workload, seed=seed,
                            calibration=_calibration(fail_mode))
    testbed.channel.bind_controller(lambda message: None)   # black hole
    testbed.pktgen.start(at=send_at)
    return testbed


def test_silence_triggers_disconnection_event():
    testbed = _dead_controller_testbed("secure", n_flows=1, send_at=5.0)
    events = []
    testbed.switch.events.on("controller_disconnected",
                             lambda t: events.append(t))
    testbed.sim.run(until=2.0)
    assert not testbed.switch.agent.connected
    assert len(events) == 1
    assert 0.5 <= events[0] <= 1.0     # timeout + one probe period
    testbed.shutdown()


def test_fail_secure_drops_misses_while_disconnected():
    testbed = _dead_controller_testbed("secure")
    testbed.sim.run(until=3.0)
    agent = testbed.switch.agent
    assert agent.misses_dropped_disconnected == 6
    assert agent.packet_ins_sent == 0
    assert testbed.switch.datapath.packets_dropped == 6
    assert len(testbed.host2.received) == 0
    testbed.shutdown()


def test_fail_standalone_floods_misses_while_disconnected():
    testbed = _dead_controller_testbed("standalone")
    testbed.sim.run(until=3.0)
    agent = testbed.switch.agent
    assert agent.misses_flooded_disconnected == 6
    assert agent.packet_ins_sent == 0
    # Flooding out every other port still reaches the destination.
    assert len(testbed.host2.received) == 6
    testbed.shutdown()


def test_installed_rules_keep_forwarding_while_disconnected():
    """Fail-secure only affects the miss path; hits still flow."""
    workload = single_packet_flows(mbps(20), n_flows=4,
                                   rng=RandomStreams(51))
    testbed = build_testbed(buffer_256(), workload, seed=51,
                            calibration=_calibration("secure"))
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)          # rules install while healthy
    testbed.sim.run(until=0.5)
    assert len(testbed.host2.received) == 4
    # Now kill the controller and resend the same flows.
    testbed.channel.bind_controller(lambda message: None)
    testbed.sim.run(until=2.0)
    assert not testbed.switch.agent.connected
    replay = single_packet_flows(mbps(20), n_flows=4,
                                 rng=RandomStreams(51))
    from repro.trafficgen import PacketGenerator
    PacketGenerator(testbed.sim, testbed.host1, replay).start()
    testbed.sim.run(until=3.0)
    assert len(testbed.host2.received) == 8   # hits unaffected
    testbed.shutdown()


def test_reconnection_restores_reactive_operation():
    testbed = _dead_controller_testbed("secure", n_flows=3, send_at=1.0)
    reconnects = []
    testbed.switch.events.on("controller_reconnected",
                             lambda t: reconnects.append(t))
    testbed.sim.run(until=2.0)
    assert not testbed.switch.agent.connected
    # Controller comes back: restore the real handler.
    testbed.controller.attach_channel(testbed.channel, datapath_id=1)
    testbed.sim.run(until=3.0)
    assert testbed.switch.agent.connected
    assert len(reconnects) == 1
    # New traffic is handled reactively again.
    replay = single_packet_flows(mbps(20), n_flows=3,
                                 rng=RandomStreams(52))
    from repro.trafficgen import PacketGenerator
    PacketGenerator(testbed.sim, testbed.host1, replay).start()
    testbed.sim.run(until=4.0)
    assert testbed.switch.agent.packet_ins_sent == 3
    assert len(testbed.host2.received) == 3
    testbed.shutdown()


def test_probe_disabled_means_always_connected():
    calibration = TestbedCalibration(
        switch=SwitchConfig(connection_probe_interval=0.0,
                            buffer_ageout=0.0),
        controller=ControllerConfig())
    workload = single_packet_flows(mbps(20), n_flows=2,
                                   rng=RandomStreams(53))
    testbed = build_testbed(buffer_256(), workload, seed=53,
                            calibration=calibration)
    testbed.channel.bind_controller(lambda message: None)
    testbed.pktgen.start(at=2.0)
    testbed.sim.run(until=3.0)
    assert testbed.switch.agent.connected          # never declared dead
    assert testbed.switch.agent.packet_ins_sent == 2
    testbed.shutdown()


def test_fail_mode_validation():
    with pytest.raises(ValueError):
        SwitchConfig(fail_mode="panic")
    with pytest.raises(ValueError):
        SwitchConfig(connection_timeout=0.0)
    with pytest.raises(ValueError):
        SwitchConfig(connection_probe_interval=-1.0)
