"""ProgressTracker tests: counters, ETA math, throttled emission."""

from __future__ import annotations

import pytest

from repro.parallel import ProgressTracker


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


def test_throughput_and_eta(clock):
    tracker = ProgressTracker(total=4, clock=clock)
    clock.now = 2.0
    tracker.task_done(worker="a")
    assert tracker.processed == 1
    assert tracker.throughput() == pytest.approx(0.5)
    assert tracker.eta_seconds() == pytest.approx(6.0)   # 3 left at 0.5/s
    clock.now = 4.0
    tracker.task_done(worker="b", cached=True)
    assert tracker.cached == 1
    assert tracker.throughput() == pytest.approx(0.5)
    # ETA projects from *fresh* throughput only: 1 fresh task in 4s.
    assert tracker.fresh_throughput() == pytest.approx(0.25)
    assert tracker.eta_seconds() == pytest.approx(8.0)


def test_eta_unknown_before_any_progress(clock):
    tracker = ProgressTracker(total=4, clock=clock)
    assert tracker.eta_seconds() is None
    assert tracker.throughput() == 0.0


def test_eta_ignores_instant_cached_prefix(clock):
    """Bugfix regression: a prefix of instant cache hits must not
    collapse the ETA to ~0 (old behaviour: overall throughput counted
    the hits, so 5 hits in 10ms projected the rest at 500 tasks/s)."""
    tracker = ProgressTracker(total=10, clock=clock)
    clock.now = 0.01
    for _ in range(5):
        tracker.task_done(cached=True)
    # No fresh signal yet: the honest answer is "unknown", not ~0.01s.
    assert tracker.eta_seconds() is None
    assert tracker.cached == 5


def test_eta_recovers_after_cached_to_fresh_transition(clock):
    tracker = ProgressTracker(total=10, clock=clock)
    clock.now = 0.01
    for _ in range(5):
        tracker.task_done(cached=True)
    clock.now = 2.01
    tracker.task_done()            # first fresh task took ~2s
    # Fresh window starts where the cached prefix ended: 1 task / 2s.
    assert tracker.fresh_throughput() == pytest.approx(0.5)
    assert tracker.eta_seconds() == pytest.approx(8.0)   # 4 left at 0.5/s
    clock.now = 4.01
    tracker.task_done()
    assert tracker.fresh_throughput() == pytest.approx(0.5)
    assert tracker.eta_seconds() == pytest.approx(6.0)   # 3 left at 0.5/s
    # A cache hit mid-stream counts, but does not perturb the rate basis.
    tracker.task_done(cached=True)
    assert tracker.fresh_throughput() == pytest.approx(0.5)
    assert tracker.eta_seconds() == pytest.approx(4.0)   # 2 left at 0.5/s


def test_per_worker_throughput(clock):
    tracker = ProgressTracker(total=4, clock=clock)
    clock.now = 4.0
    tracker.task_done(worker="pid-1")
    tracker.task_done(worker="pid-1")
    tracker.task_done(worker="pid-2")
    rates = tracker.per_worker_throughput()
    assert rates["pid-1"] == pytest.approx(0.5)
    assert rates["pid-2"] == pytest.approx(0.25)


def test_failed_tasks_count_as_processed(clock):
    tracker = ProgressTracker(total=2, clock=clock)
    clock.now = 1.0
    tracker.task_done()
    tracker.task_failed()
    assert tracker.processed == 2
    assert tracker.failed == 1
    assert "failed 1" in tracker.render()


def test_render_shows_progress_and_eta(clock):
    tracker = ProgressTracker(total=8, clock=clock)
    clock.now = 2.0
    tracker.task_done()
    tracker.task_done()
    line = tracker.render()
    assert "[2/8]" in line
    assert "25%" in line
    assert "eta" in line and "6.0s" in line
    assert "tasks/s" in line


def test_emission_is_throttled(clock):
    lines = []
    tracker = ProgressTracker(total=10, emit=lines.append, clock=clock,
                              min_interval=5.0)
    clock.now = 1.0
    tracker.task_done()          # first event always emits
    clock.now = 2.0
    tracker.task_done()          # within min_interval: suppressed
    clock.now = 3.0
    tracker.task_done()          # still suppressed
    assert len(lines) == 1
    clock.now = 7.0
    tracker.task_done()          # interval elapsed: emits
    assert len(lines) == 2
    tracker.finish()             # summary is never throttled
    assert len(lines) == 3
    assert "done 4/10" in lines[-1]


def test_last_task_emits_even_within_throttle_window(clock):
    lines = []
    tracker = ProgressTracker(total=2, emit=lines.append, clock=clock,
                              min_interval=60.0)
    clock.now = 0.5
    tracker.task_done()
    clock.now = 0.6
    tracker.task_done()
    assert "[2/2]" in lines[-1]


def test_summary_includes_per_worker_breakdown(clock):
    tracker = ProgressTracker(total=2, clock=clock)
    clock.now = 2.0
    tracker.task_done(worker="pid-7")
    tracker.task_done(worker="pid-9")
    summary = tracker.summary()
    assert "pid-7" in summary and "pid-9" in summary
    assert "done 2/2" in summary


def test_retries_are_tracked(clock):
    tracker = ProgressTracker(total=1, clock=clock)
    tracker.task_retried()
    tracker.task_retried()
    clock.now = 1.0
    tracker.task_done()
    assert tracker.retries == 2
    assert "retries 2" in tracker.summary()
