"""The scenario layer: specs, builders, and topology-agnostic sweeps.

The two acceptance bars of the refactor:

* the default single-switch sweep routed through the scenario layer is
  **bit-identical** to the pre-refactor direct ``build_testbed`` path
  (golden values below were captured on the pre-scenario code), and
* a ``line(n)`` study runs end-to-end through the parallel engine with
  caching and observation, producing the control-overhead-vs-path-length
  figure for n in {1, 2, 4}.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import buffer_16, buffer_256
from repro.experiments import run_once, run_path_experiment, sweep
from repro.experiments.figures import workload_a_factory
from repro.faults import FaultSpec
from repro.parallel import ResultCache, SweepJob
from repro.parallel.cache import CACHE_SCHEMA, task_key
from repro.scenarios import (SINGLE, ScenarioSpec, build_scenario,
                             fanin_scenario, line_scenario, parse_scenario,
                             shard_workload, single_scenario)
from repro.scenarios.builders import available_shapes, register_builder
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


# ---------------------------------------------------------------------------
# ScenarioSpec + parse_scenario
# ---------------------------------------------------------------------------

def test_spec_names():
    assert single_scenario().name == "single"
    assert line_scenario(4).name == "line:4"
    assert fanin_scenario(3).name == "fanin:3"


def test_parse_scenario_round_trips():
    for text in ("single", "line:1", "line:4", "fanin:2"):
        assert parse_scenario(text).name == text


def test_parse_scenario_rejects_bad_input():
    with pytest.raises(ValueError, match="takes no size"):
        parse_scenario("single:2")
    with pytest.raises(ValueError, match="needs a size"):
        parse_scenario("line")
    with pytest.raises(ValueError, match="must be an integer"):
        parse_scenario("line:x")
    with pytest.raises(ValueError, match="unknown scenario"):
        parse_scenario("ring:3")


def test_spec_validation():
    with pytest.raises(ValueError):
        line_scenario(0)
    with pytest.raises(ValueError):
        fanin_scenario(0)
    with pytest.raises(ValueError):
        ScenarioSpec(shape="")


def test_spec_is_frozen_and_hashable():
    spec = line_scenario(2)
    assert spec == line_scenario(2)
    assert hash(spec) == hash(line_scenario(2))
    assert spec != line_scenario(3)
    assert len({single_scenario(), SINGLE, line_scenario(2)}) == 2
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.n_switches = 5


def test_spec_overrides_are_canonicalized_per_datapath():
    spec = ScenarioSpec(
        shape="line", n_switches=2,
        switch_overrides=((2, (("cpu_cores", 4),)),
                          (1, (("cpu_cores", 2),))))
    assert spec.override_for(1) == {"cpu_cores": 2}
    assert spec.override_for(2) == {"cpu_cores": 4}
    assert spec.override_for(3) == {}
    # canonical order makes construction-order irrelevant for equality
    flipped = ScenarioSpec(
        shape="line", n_switches=2,
        switch_overrides=((1, (("cpu_cores", 2),)),
                          (2, (("cpu_cores", 4),))))
    assert spec == flipped and hash(spec) == hash(flipped)


def test_cache_tokens_distinguish_topologies():
    tokens = {single_scenario().cache_token(),
              line_scenario(1).cache_token(),
              line_scenario(2).cache_token(),
              fanin_scenario(2).cache_token()}
    assert len(tokens) == 4


# ---------------------------------------------------------------------------
# Builder registry
# ---------------------------------------------------------------------------

def test_registered_shapes():
    assert set(available_shapes()) >= {"single", "line", "fanin"}


def test_duplicate_builder_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        @register_builder("single")
        def clone(*args):
            """Never installed."""


def test_unknown_shape_raises_with_known_list():
    workload = single_packet_flows(mbps(20), n_flows=3,
                                   rng=RandomStreams(0))
    with pytest.raises(ValueError, match="registered"):
        build_scenario(ScenarioSpec(shape="ring"), buffer_16(), workload)


def test_unknown_calibration_name_raises():
    workload = single_packet_flows(mbps(20), n_flows=3,
                                   rng=RandomStreams(0))
    with pytest.raises(ValueError, match="unknown calibration"):
        build_scenario(ScenarioSpec(calibration="lab"), buffer_16(),
                       workload)


# ---------------------------------------------------------------------------
# Golden bit-identity: the default sweep through the scenario layer
# ---------------------------------------------------------------------------

#: Captured on the pre-refactor code path (direct build_testbed), from
#: sweep(buffer_16(), workload_a_factory(n_flows=25), (20.0, 60.0), 2,
#: base_seed=3).  Exact floats — the refactor must not move a single bit.
_GOLDEN_ROWS = (
    (20.0, 2.56922477067475, 2.723378256915235, 13.265,
     198.60399999999998, 0.001089000275862074, 0.0007028399999999993,
     0.00038616027586207274, 0.001089000275862074, 5.5, 12.0, 25.0,
     25.0, 25, 0.0),
    (60.0, 10.901547045203365, 12.13357119757224, 5.0, 180.0,
     0.001218363486896557, 0.0007800192000000004,
     0.0004383442868965559, 0.001218363486896557, 0.0, 16.0, 25.0,
     25.0, 25, 0.0),
)


def _row_tuple(r):
    return (r.rate_mbps, r.load_up_mbps, r.load_down_mbps,
            r.controller_usage.mean, r.switch_usage.mean,
            r.setup_delay.mean, r.controller_delay.mean,
            r.switch_delay.mean, r.forwarding_delay.mean,
            r.buffer_avg_units, r.buffer_max_units, r.packet_ins_per_run,
            r.completed_flows, r.total_flows, r.packets_dropped)


def test_default_sweep_is_bit_identical_to_pre_refactor_golden():
    """ACCEPTANCE: scenario-layer default == historical testbed, exactly."""
    result = sweep(buffer_16(), workload_a_factory(n_flows=25),
                   (20.0, 60.0), 2, base_seed=3)
    assert tuple(_row_tuple(row) for row in result.rows) == _GOLDEN_ROWS


def test_sweep_explicit_single_scenario_matches_default():
    kwargs = dict(rates_mbps=(20.0,), repetitions=1, base_seed=7)
    default = sweep(buffer_16(), workload_a_factory(n_flows=15), **kwargs)
    explicit = sweep(buffer_16(), workload_a_factory(n_flows=15),
                     scenario=single_scenario(), **kwargs)
    assert [_row_tuple(r) for r in default.rows] \
        == [_row_tuple(r) for r in explicit.rows]


# ---------------------------------------------------------------------------
# Line and fan-in runs
# ---------------------------------------------------------------------------

def _workload(n_flows=10, seed=9, rate=20):
    return single_packet_flows(mbps(rate), n_flows=n_flows,
                               rng=RandomStreams(seed))


@pytest.mark.parametrize("n", [1, 2, 3])
def test_line_run_pays_one_setup_per_switch(n):
    metrics = run_once(buffer_256(), _workload(), seed=9,
                       scenario=line_scenario(n))
    assert metrics.completed_flows == metrics.total_flows == 10
    assert metrics.packet_in_count == n * 10
    assert metrics.packets_dropped == 0


def test_line_testbed_exposes_per_switch_accounting():
    testbed = build_scenario(line_scenario(2), buffer_256(), _workload(),
                             seed=9)
    try:
        assert [s.name for s in testbed.switches] == ["s1", "s2"]
        assert [s.datapath_id for s in testbed.switches] == [1, 2]
        assert len(testbed.control_cables) == 2
        assert len(testbed.topology) == 2 + 2 + 1   # hosts+switches+ctrl
    finally:
        testbed.shutdown()


def test_fanin_build_and_run():
    spec = fanin_scenario(3)
    testbed = build_scenario(spec, buffer_256(), _workload(n_flows=12),
                             seed=9)
    try:
        assert len(testbed.hosts) == 4                  # 3 sources + egress
        assert [h.name for h in testbed.hosts[:-1]] \
            == ["src1", "src2", "src3"]
        assert len(testbed.pktgens) == 3
    finally:
        testbed.shutdown()
    metrics = run_once(buffer_256(), _workload(n_flows=12), seed=9,
                       scenario=spec)
    assert metrics.completed_flows == metrics.total_flows == 12
    assert metrics.packets_dropped == 0


def test_shard_workload_partitions_by_flow():
    workload = _workload(n_flows=10)
    shards = shard_workload(workload, 3)
    assert sum(len(s.entries) for s in shards) == len(workload.entries)
    assert sum(len(s.flows) for s in shards) == len(workload.flows)
    for index, shard in enumerate(shards):
        assert all(fid % 3 == index for fid in shard.flows)
    with pytest.raises(ValueError):
        shard_workload(workload, 0)


# ---------------------------------------------------------------------------
# Cache keys: the poisoning regression (satellite 1)
# ---------------------------------------------------------------------------

def _job(scenario=None):
    # job_id only gates tasks(); task_key deliberately excludes it.
    return SweepJob(config=buffer_256(),
                    factory=workload_a_factory(n_flows=10),
                    rates_mbps=(20.0,), repetitions=1, base_seed=0,
                    scenario=scenario, job_id=1)


def test_cache_schema_bumped_for_scenario_keys():
    assert CACHE_SCHEMA >= 2


def test_cache_key_differs_for_specs_differing_only_in_topology():
    """REGRESSION: two specs differing only in topology never share a
    cache entry (the pre-scenario key omitted topology entirely)."""
    base = _job()
    keys = {task_key(job, next(iter(job.tasks())))
            for job in (base, _job(line_scenario(2)), _job(line_scenario(4)),
                        _job(fanin_scenario(2)))}
    assert len(keys) == 4


def test_cache_key_treats_none_and_single_as_the_same_run():
    a, b = _job(None), _job(single_scenario())
    assert task_key(a, next(iter(a.tasks()))) \
        == task_key(b, next(iter(b.tasks())))


def test_cache_never_returns_single_result_for_line_run(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    single_job = _job()
    line_job = _job(line_scenario(2))
    single_task = next(iter(single_job.tasks()))
    metrics = run_once(buffer_256(), _workload(), seed=single_task.seed)
    cache.put(task_key(single_job, single_task), metrics)
    assert cache.get(task_key(line_job,
                              next(iter(line_job.tasks())))) is None


# ---------------------------------------------------------------------------
# The path-length study (ACCEPTANCE: engine + cache + obs, n in {1,2,4})
# ---------------------------------------------------------------------------

def test_path_experiment_runs_with_engine_cache_and_obs(tmp_path):
    from repro.obs import ObsCollector
    cache = ResultCache(tmp_path / "cache")
    obs = ObsCollector()
    data = run_path_experiment(lengths=(1, 2, 4), rates_mbps=(30.0,),
                               repetitions=1, n_flows=10,
                               packets_per_flow=6, workers=2, cache=cache,
                               obs=obs)
    assert data.report.ok
    assert data.lengths == (1, 2, 4)

    for label in data.labels:
        loads = data.series_vs_length(label, lambda r: r.load_up_mbps)
        assert loads == sorted(loads)           # overhead grows with hops
        assert loads[0] > 0
    pkt = data.series_vs_length("buffer-256",
                                lambda r: r.packet_ins_per_run)
    flow = data.series_vs_length("flow-buffer-256",
                                 lambda r: r.packet_ins_per_run)
    # Flow granularity pays exactly one packet_in per (flow, switch);
    # packet granularity pays at least one per packet of the first batch.
    assert flow == [10.0, 20.0, 40.0]
    assert all(f < p for f, p in zip(flow, pkt))

    # Observation followed every task, labelled by composite sweep key.
    assert {o.label for o in obs.observations} \
        == {data.key(label, n) for label in data.labels
            for n in data.lengths}

    # A second, unobserved run resolves entirely from the cache.
    again = run_path_experiment(lengths=(1, 2, 4), rates_mbps=(30.0,),
                                repetitions=1, n_flows=10,
                                packets_per_flow=6, workers=2, cache=cache)
    assert again.report.cached == again.report.total_tasks == 6
    for label in again.labels:
        for n in again.lengths:
            assert _row_tuple(again.sweep_for(label, n).rows[0]) \
                == _row_tuple(data.sweep_for(label, n).rows[0])


def test_path_experiment_rejects_empty_lengths():
    with pytest.raises(ValueError, match="at least one line length"):
        run_path_experiment(lengths=())


# ---------------------------------------------------------------------------
# Kernel-equivalence goldens (the fast-path kernel must not move a bit)
# ---------------------------------------------------------------------------

#: Captured on the pre-fast-path kernel (commit e902188): sweep(
#: buffer_256(), workload_a_factory(n_flows=20), (20.0, 60.0), 1,
#: base_seed=11) over {single, line:2} x {no faults, 1% loss}.  The
#: optimized kernel (pooled ScheduledCalls, same-instant micro-queue,
#: fused run loop, interned flow keys) must reproduce every float
#: exactly, with and without faults, serial and parallel.
_KERNEL_FAULTS = FaultSpec(loss_up=0.01, loss_down=0.01)

_KERNEL_GRID = (
    ("single", None),
    ("single", _KERNEL_FAULTS),
    ("line:2", None),
    ("line:2", _KERNEL_FAULTS),
)


def _kernel_combo_id(scenario_name, faults):
    return f"{scenario_name}/{'loss1pct' if faults else 'none'}"


_KERNEL_GOLDEN_ROWS = {
    "single/none": (
        (20.0, 2.3577027088187688, 2.499164871347895, 11.612000000000002,
         195.8512, 0.0010890002758620725, 0.0007028399999999997,
         0.00038616027586207274, 0.0010890002758620725, 3.0, 12.0, 20.0,
         20.0, 20, 0.0),
        (60.0, 3.7635651254500995, 3.989379032977105, 5.0, 180.0,
         0.0010890002758620725, 0.0007028399999999997,
         0.00038616027586207274, 0.0010890002758620725, 0.0, 20.0, 20.0,
         20.0, 20, 0.0),
    ),
    "single/loss1pct": (
        (20.0, 2.3577027088187688, 2.499164871347895, 11.612000000000002,
         195.8512, 0.0010890002758620725, 0.0007028399999999997,
         0.00038616027586207274, 0.0010890002758620725, 3.0, 12.0, 20.0,
         20.0, 20, 0.0),
        (60.0, 3.7635651254500995, 3.989379032977105, 5.0, 180.0,
         0.0010890002758620725, 0.0007028399999999997,
         0.00038616027586207274, 0.0010890002758620725, 0.0, 20.0, 20.0,
         18.0, 20, 0.0),
    ),
    "line:2/none": (
        (20.0, 4.339924982090564, 4.6003204810159986, 18.246480799999993,
         195.8512, 0.002263225359724149, 0.0007030648080000009,
         0.001560160551724147, 0.002263225359724149, 7.5, 24.0, 40.0,
         20.0, 20, 0.0),
        (60.0, 6.61372848809185, 7.01055219737736, 5.0, 180.0,
         0.0022631460157241483, 0.0007029854640000005,
         0.001560160551724147, 0.0022631460157241483, 0.0, 40.0, 40.0,
         20.0, 20, 0.0),
    ),
    "line:2/loss1pct": (
        (20.0, 4.339924982090564, 4.6003204810159986, 18.246480799999993,
         195.8512, 0.002263225359724149, 0.0007030648080000009,
         0.001560160551724147, 0.002263225359724149, 7.5, 24.0, 40.0,
         20.0, 20, 0.0),
        (60.0, 6.283042063687256, 6.309496977639624, 5.0, 180.0,
         0.0022631250129006185, 0.0007029652800000003,
         0.001560160551724147, 0.0022631250129006185, 0.0, 38.0, 38.0,
         17.0, 20, 0.0),
    ),
}

#: Cache tokens for the same grid (one per rate, rates in sweep order).
#: Pinned so a kernel change can never silently re-key — and therefore
#: silently invalidate or, worse, cross-contaminate — the result cache.
#: Regenerated for CACHE_SCHEMA v4 (the pool token joined the key),
#: again for v5 (the execution engine joined through the scenario
#: token) and for v6 (the shard spec joined the same way); the golden
#: ROW values above are unchanged from the pre-pool kernel — schema
#: bumps re-key the cache, never the physics.
_KERNEL_GOLDEN_TASK_KEYS = {
    "single/none": (
        "a3a42924b61109d408b8938a939ba476dc395ab16a6b8cb7e68bc840e2140132",
        "1efcf24d3b4dec358e8244b67ed4dc0a7a8a38386ec314ef47e16674363d04cf",
    ),
    "single/loss1pct": (
        "3c8c3f8b5e3aae130a09825224818444f6886a3744c11985ed55c218d9f20202",
        "8ba0e686116a022ebc7f8440f449858d4e47a42a2d106f0f43301f48495c6975",
    ),
    "line:2/none": (
        "08e485486233bd8266cc2ce1ba89512ef688b9082cefd3f611133316110ca65a",
        "92a9587c8a0f4c12a88fb20a3136d410201df5b496d7a2926d3844c4fb4b515f",
    ),
    "line:2/loss1pct": (
        "d5e56172d01fdf34b589dec515b73ae29067d08c074bff8c6f4f831a802f1aa1",
        "7c38e8b37da945ba4e2329917a5ccb1a86da248786e73115d2e9ea8e7ed59930",
    ),
}


def _kernel_sweep(scenario_name, faults, **kwargs):
    return sweep(buffer_256(), workload_a_factory(n_flows=20),
                 (20.0, 60.0), 1, base_seed=11,
                 scenario=parse_scenario(scenario_name), faults=faults,
                 **kwargs)


@pytest.mark.parametrize("scenario_name,faults", _KERNEL_GRID,
                         ids=[_kernel_combo_id(s, f) for s, f in _KERNEL_GRID])
def test_kernel_sweep_serial_bit_identical(scenario_name, faults):
    """ACCEPTANCE: optimized kernel == pre-optimization golden, serial."""
    result = _kernel_sweep(scenario_name, faults)
    assert tuple(_row_tuple(r) for r in result.rows) \
        == _KERNEL_GOLDEN_ROWS[_kernel_combo_id(scenario_name, faults)]


@pytest.mark.parametrize("scenario_name,faults", _KERNEL_GRID,
                         ids=[_kernel_combo_id(s, f) for s, f in _KERNEL_GRID])
def test_kernel_sweep_parallel_bit_identical(scenario_name, faults):
    """ACCEPTANCE: same golden through the multiprocess engine."""
    result = _kernel_sweep(scenario_name, faults, workers=2)
    assert tuple(_row_tuple(r) for r in result.rows) \
        == _KERNEL_GOLDEN_ROWS[_kernel_combo_id(scenario_name, faults)]


def test_kernel_sweep_observed_bit_identical():
    """ACCEPTANCE: attaching the obs layer must not perturb a single bit
    (the zero-cost-when-off guards never reorder or drop events)."""
    from repro.obs import ObsCollector
    for scenario_name, faults in (("single", _KERNEL_FAULTS),
                                  ("line:2", _KERNEL_FAULTS)):
        result = _kernel_sweep(scenario_name, faults, obs=ObsCollector())
        assert tuple(_row_tuple(r) for r in result.rows) \
            == _KERNEL_GOLDEN_ROWS[_kernel_combo_id(scenario_name, faults)]


@pytest.mark.parametrize("scenario_name,faults", _KERNEL_GRID,
                         ids=[_kernel_combo_id(s, f) for s, f in _KERNEL_GRID])
def test_kernel_task_keys_pinned(scenario_name, faults):
    """The cache tokens for the golden grid are frozen byte-for-byte."""
    job = SweepJob(config=buffer_256(),
                   factory=workload_a_factory(n_flows=20),
                   rates_mbps=(20.0, 60.0), repetitions=1, base_seed=11,
                   scenario=parse_scenario(scenario_name), faults=faults,
                   job_id=1)
    tokens = tuple(task_key(job, task) for task in job.tasks())
    assert tokens \
        == _KERNEL_GOLDEN_TASK_KEYS[_kernel_combo_id(scenario_name, faults)]
