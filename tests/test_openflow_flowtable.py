"""Tests for the flow table: lookup, timeouts, eviction."""

from __future__ import annotations

import pytest

from repro.openflow import FlowEntry, FlowTable, Match, OutputAction
from repro.packets import udp_packet


def _packet(i=0):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.{i // 256}.{i % 256}", "10.0.0.2", 1000 + i, 2000)


def _exact_entry(packet, in_port=1, **kwargs):
    return FlowEntry(match=Match.exact_from_packet(packet, in_port=in_port),
                     actions=(OutputAction(2),), **kwargs)


def test_lookup_miss_on_empty_table():
    table = FlowTable()
    assert table.lookup(_packet(), in_port=1, now=0.0) is None
    assert table.miss_count == 1


def test_exact_insert_and_hit():
    table = FlowTable()
    packet = _packet()
    table.insert(_exact_entry(packet), now=0.0)
    entry = table.lookup(packet, in_port=1, now=1.0)
    assert entry is not None
    assert entry.packet_count == 1
    assert entry.byte_count == packet.wire_len
    assert entry.last_used == 1.0


def test_hit_requires_matching_in_port():
    table = FlowTable()
    packet = _packet()
    table.insert(_exact_entry(packet, in_port=1), now=0.0)
    assert table.lookup(packet, in_port=2, now=1.0) is None


def test_wildcard_entry_matches():
    table = FlowTable()
    table.insert(FlowEntry(match=Match(ip_dst="10.0.0.2"),
                           actions=(OutputAction(2),)), now=0.0)
    assert table.lookup(_packet(5), in_port=9, now=1.0) is not None


def test_higher_priority_wildcard_beats_lower():
    table = FlowTable()
    low = FlowEntry(match=Match(ip_dst="10.0.0.2"),
                    actions=(OutputAction(1),), priority=10)
    high = FlowEntry(match=Match(tp_dst=2000),
                     actions=(OutputAction(2),), priority=20)
    table.insert(low, now=0.0)
    table.insert(high, now=0.0)
    entry = table.lookup(_packet(), in_port=1, now=1.0)
    assert entry is high


def test_exact_entry_and_higher_priority_wildcard():
    table = FlowTable()
    packet = _packet()
    exact = _exact_entry(packet, priority=10)
    wildcard = FlowEntry(match=Match(), actions=(OutputAction(9),),
                         priority=100)
    table.insert(exact, now=0.0)
    table.insert(wildcard, now=0.0)
    assert table.lookup(packet, in_port=1, now=1.0) is wildcard


def test_idle_timeout_expires_entry():
    table = FlowTable()
    packet = _packet()
    table.insert(_exact_entry(packet, idle_timeout=5.0), now=0.0)
    assert table.lookup(packet, in_port=1, now=4.0) is not None
    # Last use at t=4; idle expires at t=9.
    assert table.lookup(packet, in_port=1, now=9.5) is None


def test_hard_timeout_expires_despite_use():
    table = FlowTable()
    packet = _packet()
    table.insert(_exact_entry(packet, hard_timeout=10.0), now=0.0)
    assert table.lookup(packet, in_port=1, now=9.0) is not None
    assert table.lookup(packet, in_port=1, now=10.5) is None


def test_zero_timeouts_never_expire():
    table = FlowTable()
    packet = _packet()
    table.insert(_exact_entry(packet), now=0.0)
    assert table.lookup(packet, in_port=1, now=1e9) is not None


def test_expire_sweep_returns_expired_entries():
    table = FlowTable()
    table.insert(_exact_entry(_packet(1), hard_timeout=1.0), now=0.0)
    table.insert(_exact_entry(_packet(2), hard_timeout=100.0), now=0.0)
    expired = table.expire(now=50.0)
    assert len(expired) == 1
    assert len(table) == 1


def test_reinsert_same_match_replaces():
    table = FlowTable(capacity=10)
    packet = _packet()
    table.insert(_exact_entry(packet), now=0.0)
    replacement = _exact_entry(packet)
    evicted = table.insert(replacement, now=1.0)
    assert evicted is None
    assert len(table) == 1


def test_lru_eviction_at_capacity():
    table = FlowTable(capacity=2, eviction="lru")
    p1, p2, p3 = _packet(1), _packet(2), _packet(3)
    table.insert(_exact_entry(p1), now=0.0)
    table.insert(_exact_entry(p2), now=1.0)
    table.lookup(p1, in_port=1, now=2.0)   # p1 is now most recently used
    evicted = table.insert(_exact_entry(p3), now=3.0)
    assert evicted is not None
    assert table.lookup(p2, in_port=1, now=4.0) is None   # p2 was evicted
    assert table.lookup(p1, in_port=1, now=4.0) is not None
    assert table.evictions == 1


def test_fifo_eviction_ignores_recency():
    table = FlowTable(capacity=2, eviction="fifo")
    p1, p2, p3 = _packet(1), _packet(2), _packet(3)
    table.insert(_exact_entry(p1), now=0.0)
    table.insert(_exact_entry(p2), now=1.0)
    table.lookup(p1, in_port=1, now=2.0)
    table.insert(_exact_entry(p3), now=3.0)
    assert table.lookup(p1, in_port=1, now=4.0) is None   # oldest evicted


def test_remove_covered_entries():
    table = FlowTable()
    table.insert(_exact_entry(_packet(1)), now=0.0)
    table.insert(_exact_entry(_packet(2)), now=0.0)
    removed = table.remove(Match(ip_dst="10.0.0.2"))
    assert removed == 2
    assert len(table) == 0


def test_remove_strict_requires_identical_match_and_priority():
    table = FlowTable()
    packet = _packet()
    entry = _exact_entry(packet, priority=7)
    table.insert(entry, now=0.0)
    assert table.remove(entry.match, strict_priority=8) == 0
    assert table.remove(entry.match, strict_priority=7) == 1


def test_invalid_construction():
    with pytest.raises(ValueError):
        FlowTable(capacity=0)
    with pytest.raises(ValueError):
        FlowTable(eviction="random")


def test_clear_empties_table():
    table = FlowTable()
    table.insert(_exact_entry(_packet(1)), now=0.0)
    table.clear()
    assert len(table) == 0


def test_entries_lists_all():
    table = FlowTable()
    table.insert(_exact_entry(_packet(1)), now=0.0)
    table.insert(FlowEntry(match=Match(), actions=(OutputAction(1),)),
                 now=0.0)
    assert len(table.entries()) == 2


def test_wildcard_replacement_keeps_tiebreak_rank():
    # Re-installing an identical wildcard match+priority replaces the
    # entry in place; it must keep the original entry's rank so the
    # winner of an equal-priority tie never changes as a side effect —
    # not even after a later insert forces a re-sort.
    table = FlowTable()
    packet = _packet()
    first = Match(ip_src=packet.ip.src_ip)
    second = Match(in_port=1)
    table.insert(FlowEntry(match=first, actions=(OutputAction(2),),
                           priority=1), now=0.0)
    table.insert(FlowEntry(match=second, actions=(OutputAction(2),),
                           priority=1), now=0.0)
    assert table.lookup(packet, in_port=1, now=0.0).match == first
    # Replace the first entry, then insert an unrelated rule (re-sort).
    table.insert(FlowEntry(match=first, actions=(OutputAction(3),),
                           priority=1), now=1.0)
    table.insert(FlowEntry(match=Match(tp_dst=9), actions=(OutputAction(2),),
                           priority=1), now=1.0)
    winner = table.lookup(packet, in_port=1, now=1.0)
    assert winner.match == first
    assert winner.actions == (OutputAction(3),)
