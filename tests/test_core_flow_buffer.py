"""Tests for the flow-granularity buffer data structure (Algorithms 1-2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import FlowBufferFullError, FlowPacketBuffer
from repro.packets import udp_packet


def _packet(flow=0, seq=0):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      f"10.0.0.{flow + 1}", "10.0.0.2", 1000 + flow, 2000,
                      flow_id=flow, seq_in_flow=seq)


def _flow_key(flow=0):
    return _packet(flow).five_tuple


def test_get_buffer_id_returns_minus_one_for_unknown_flow():
    buffer = FlowPacketBuffer(capacity=4)
    assert buffer.get_buffer_id(_flow_key()) == -1


def test_first_packet_allocates_unit_and_shared_id():
    buffer = FlowPacketBuffer(capacity=4)
    key = _flow_key()
    buffer_id = buffer.buffer_first_packet(key, _packet(0, 0), now=0.0)
    assert buffer.get_buffer_id(key) == buffer_id
    assert buffer.units_in_use == 1
    assert buffer.packets_stored == 1


def test_subsequent_packets_share_the_unit():
    buffer = FlowPacketBuffer(capacity=4)
    key = _flow_key()
    buffer_id = buffer.buffer_first_packet(key, _packet(0, 0), now=0.0)
    for seq in range(1, 5):
        assert buffer.buffer_subsequent_packet(buffer_id, _packet(0, seq))
    assert buffer.units_in_use == 1          # still ONE unit
    assert buffer.packets_stored == 5
    assert buffer.queue_length(buffer_id) == 5


def test_release_all_returns_packets_in_arrival_order():
    buffer = FlowPacketBuffer(capacity=4)
    key = _flow_key()
    packets = [_packet(0, seq) for seq in range(4)]
    buffer_id = buffer.buffer_first_packet(key, packets[0], now=0.0)
    for packet in packets[1:]:
        buffer.buffer_subsequent_packet(buffer_id, packet)
    released = buffer.release_all(buffer_id)
    assert released == packets
    assert buffer.units_in_use == 0
    assert buffer.packets_stored == 0
    assert buffer.get_buffer_id(key) == -1


def test_release_all_unknown_id_is_empty():
    buffer = FlowPacketBuffer(capacity=4)
    assert buffer.release_all(424242) == []
    assert buffer.unknown_releases == 1


def test_duplicate_first_packet_rejected():
    buffer = FlowPacketBuffer(capacity=4)
    key = _flow_key()
    buffer.buffer_first_packet(key, _packet(0, 0), now=0.0)
    with pytest.raises(ValueError):
        buffer.buffer_first_packet(key, _packet(0, 1), now=0.0)


def test_capacity_counts_flows_not_packets():
    buffer = FlowPacketBuffer(capacity=2)
    id0 = buffer.buffer_first_packet(_flow_key(0), _packet(0), now=0.0)
    buffer.buffer_first_packet(_flow_key(1), _packet(1), now=0.0)
    for seq in range(1, 10):
        buffer.buffer_subsequent_packet(id0, _packet(0, seq))
    assert buffer.packets_stored == 11
    assert buffer.is_full
    with pytest.raises(FlowBufferFullError):
        buffer.buffer_first_packet(_flow_key(2), _packet(2), now=0.0)
    assert buffer.full_rejections == 1


def test_per_flow_packet_cap():
    buffer = FlowPacketBuffer(capacity=4, max_packets_per_flow=2)
    buffer_id = buffer.buffer_first_packet(_flow_key(), _packet(0, 0),
                                           now=0.0)
    assert buffer.buffer_subsequent_packet(buffer_id, _packet(0, 1))
    assert not buffer.buffer_subsequent_packet(buffer_id, _packet(0, 2))
    assert buffer.overflow_drops == 1


def test_subsequent_on_unknown_unit_fails():
    buffer = FlowPacketBuffer(capacity=4)
    assert not buffer.buffer_subsequent_packet(999, _packet())
    # An append to a vanished unit is not a release.
    assert buffer.unknown_appends == 1
    assert buffer.unknown_releases == 0


def test_drop_all_counts_drops_not_releases():
    """Retry exhaustion frees the unit but its packets were dropped,
    never forwarded — they must not inflate total_released."""
    buffer = FlowPacketBuffer(capacity=4)
    buffer_id = buffer.buffer_first_packet(_flow_key(), _packet(), now=0.0)
    buffer.buffer_subsequent_packet(buffer_id, _packet(0, 1))
    dropped = buffer.drop_all(buffer_id)
    assert len(dropped) == 2
    assert buffer.abandoned_drops == 2
    assert buffer.total_released == 0
    assert buffer.units_in_use == 0
    assert buffer.drop_all(buffer_id) == []     # idempotent, uncounted
    assert buffer.abandoned_drops == 2
    assert buffer.unknown_releases == 0


def test_expire_older_than_frees_unit():
    buffer = FlowPacketBuffer(capacity=4)
    buffer_id = buffer.buffer_first_packet(_flow_key(), _packet(), now=0.0)
    buffer.buffer_subsequent_packet(buffer_id, _packet(0, 1))
    expired = buffer.expire_older_than(cutoff=1.0)
    assert expired == [buffer_id]
    assert buffer.units_in_use == 0
    assert buffer.overflow_drops == 2      # expired packets count as drops


def test_peaks_track_units_and_packets():
    buffer = FlowPacketBuffer(capacity=8)
    id0 = buffer.buffer_first_packet(_flow_key(0), _packet(0), now=0.0)
    buffer.buffer_first_packet(_flow_key(1), _packet(1), now=0.0)
    buffer.buffer_subsequent_packet(id0, _packet(0, 1))
    buffer.release_all(id0)
    assert buffer.peak_units == 2
    assert buffer.peak_packets == 3
    assert buffer.units_in_use == 1


def test_flow_of_maps_id_back():
    buffer = FlowPacketBuffer(capacity=4)
    key = _flow_key()
    buffer_id = buffer.buffer_first_packet(key, _packet(), now=0.0)
    assert buffer.flow_of(buffer_id) == key
    assert buffer.flow_of(12345) is None


def test_validation():
    with pytest.raises(ValueError):
        FlowPacketBuffer(capacity=-1)
    with pytest.raises(ValueError):
        FlowPacketBuffer(capacity=1, max_packets_per_flow=0)


@given(st.lists(st.tuples(st.integers(0, 4), st.booleans()), max_size=50))
def test_units_always_equal_distinct_pending_flows(events):
    """Property: unit count == number of flows with buffered packets."""
    buffer = FlowPacketBuffer(capacity=10)
    pending = {}
    for flow, release in events:
        key = _flow_key(flow)
        if release and flow in pending:
            buffer.release_all(pending.pop(flow))
        elif flow not in pending:
            pending[flow] = buffer.buffer_first_packet(key, _packet(flow),
                                                       now=0.0)
        else:
            buffer.buffer_subsequent_packet(pending[flow], _packet(flow, 1))
        assert buffer.units_in_use == len(pending)
