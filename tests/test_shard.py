"""Sharded execution tests: spec semantics, partitioning, the link
seam, bit-identity against serial runs, determinism, and cache keying."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BufferConfig, buffer_256
from repro.experiments import run_once, workload_a_factory
from repro.faults import loss_fault
from repro.parallel import SweepJob, register_jobs, task_key
from repro.scenarios import build_scenario, parse_scenario
from repro.shard import (OFF, PER_SWITCH, ShardSpec, build_partition_plan,
                         execute_sharded, metrics_fingerprint, parse_shard,
                         run_once_sharded, verify_shard_equivalence)
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows

_FACTORY = workload_a_factory(n_flows=25)


def _workload(n_flows=20, seed=3, rate=4.0):
    return single_packet_flows(mbps(rate), n_flows=n_flows,
                               rng=RandomStreams(seed))


# ---------------------------------------------------------------------------
# ShardSpec semantics
# ---------------------------------------------------------------------------

def test_spec_defaults_off():
    assert not OFF.is_active
    assert OFF.name == "off"
    assert PER_SWITCH.is_active
    assert PER_SWITCH.name == "per-switch"
    assert PER_SWITCH.with_workers(4).name == "per-switch:4"


def test_spec_validation():
    with pytest.raises(ValueError):
        ShardSpec(mode="per-flow")
    with pytest.raises(ValueError):
        ShardSpec(mode="off", workers=2)
    with pytest.raises(ValueError):
        ShardSpec(mode="per-switch", workers=0)


def test_parse_shard():
    assert parse_shard("off") == OFF
    assert parse_shard("per-switch") == PER_SWITCH
    assert parse_shard("per-switch:3") == ShardSpec(mode="per-switch",
                                                    workers=3)
    with pytest.raises(ValueError):
        parse_shard("per-switch:zero")
    with pytest.raises(ValueError):
        parse_shard("round-robin")


def test_spec_cache_tokens_distinct():
    tokens = {
        OFF.cache_token(),
        PER_SWITCH.cache_token(),
        PER_SWITCH.with_workers(1).cache_token(),
        PER_SWITCH.with_workers(2).cache_token(),
    }
    assert len(tokens) == 4


def test_scenario_name_and_token_carry_shard():
    spec = parse_scenario("line:2")
    sharded = spec.with_shard(PER_SWITCH)
    assert spec.name == "line:2"
    assert sharded.name == "line:2+shard=per-switch"
    assert "shard=mode=per-switch" in sharded.cache_token()
    assert spec.cache_token() != sharded.cache_token()


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

def test_partition_plan_line_two():
    testbed = build_scenario(parse_scenario("line:2"), BufferConfig(),
                             _workload(), seed=1)
    plan = build_partition_plan(testbed, PER_SWITCH)
    testbed.shutdown()
    assert plan.n_shards == 3
    assert plan.shard_of_node["s1"] == plan.shard_of_node["host1"]
    assert plan.shard_of_node["s2"] == plan.shard_of_node["host2"]
    assert plan.controller_shard == 2
    # Both directions of every inter-shard cable are cut; host cables
    # stay internal.
    cut_cables = {cut.cable for cut in plan.cut_links}
    assert cut_cables == {("s1", "s2"), ("s1", "controller"),
                          ("s2", "controller")}
    assert all(cut.lookahead > 0 for cut in plan.cut_links)


def test_partition_plan_worker_grouping():
    testbed = build_scenario(parse_scenario("line:4"), BufferConfig(),
                             _workload(), seed=1)
    plan = build_partition_plan(testbed, PER_SWITCH.with_workers(2))
    testbed.shutdown()
    # 2 workers: two balanced switch groups, controller rides the last.
    assert plan.n_shards == 2
    assert plan.shard_of_node["s1"] == plan.shard_of_node["s2"] == 0
    assert plan.shard_of_node["s3"] == plan.shard_of_node["s4"] == 1
    assert plan.controller_shard == 1
    cut_cables = {cut.cable for cut in plan.cut_links}
    # The group seam and the remote group's control cables are cut;
    # intra-group cables are not.
    assert ("s2", "s3") in cut_cables
    assert ("s1", "controller") in cut_cables
    assert ("s1", "s2") not in cut_cables
    assert ("s3", "controller") not in cut_cables


def test_partition_single_worker_means_no_cuts():
    testbed = build_scenario(parse_scenario("line:2"), BufferConfig(),
                             _workload(), seed=1)
    plan = build_partition_plan(testbed, PER_SWITCH.with_workers(1))
    testbed.shutdown()
    assert plan.n_shards == 1
    assert plan.cut_links == ()


# ---------------------------------------------------------------------------
# The link seam
# ---------------------------------------------------------------------------

def test_link_outbound_seam_diverts_delivery():
    from repro.netsim import Link
    from repro.simkit import Simulator
    sim = Simulator()
    link = Link(sim, "cut", bandwidth_bps=8e6, propagation_delay=1e-3)
    received, emitted = [], []
    link.connect(received.append)
    link._outbound = lambda deliver, item: emitted.append((deliver, item))
    link.send("frame", 1000)
    sim.run(until=1.0)
    assert received == []
    assert len(emitted) == 1
    deliver, item = emitted[0]
    assert item == "frame"
    # Serialization (1ms at 8Mbps for 1000B) + propagation (1ms).
    assert deliver == pytest.approx(2e-3)
    # Clearing the seam restores local delivery.
    link._outbound = None
    link.send("frame2", 1000)
    sim.run(until=2.0)
    assert received == ["frame2"]


# ---------------------------------------------------------------------------
# Bit-identity against serial execution (the tentpole acceptance gate)
# ---------------------------------------------------------------------------

def test_verify_bit_identity_line_two():
    report = verify_shard_equivalence(parse_scenario("line:2"),
                                      transport="inline")
    assert report.ok, report.summary()
    assert report.n_shards == 3
    assert report.messages > 0
    assert sum(report.event_counts.values()) > 0


def test_verify_bit_identity_fanin_four():
    report = verify_shard_equivalence(parse_scenario("fanin:4"),
                                      transport="inline")
    assert report.ok, report.summary()
    assert report.n_shards == 2


def test_verify_bit_identity_under_faults():
    report = verify_shard_equivalence(parse_scenario("line:2"),
                                      transport="inline", n_flows=15,
                                      faults=loss_fault(0.05))
    assert report.ok, report.summary()


def test_fork_transport_matches_inline():
    spec = parse_scenario("line:2").with_shard(PER_SWITCH)
    runs = {}
    for transport in ("inline", "fork"):
        runs[transport] = run_once_sharded(
            BufferConfig(), _workload(n_flows=10), seed=3, scenario=spec,
            transport=transport)
    assert metrics_fingerprint(runs["inline"]) \
        == metrics_fingerprint(runs["fork"])


def test_run_once_dispatches_to_sharded():
    serial = run_once(BufferConfig(), _workload(), seed=3,
                      scenario=parse_scenario("line:2"))
    sharded = run_once(BufferConfig(), _workload(), seed=3,
                       scenario=parse_scenario("line:2")
                       .with_shard(PER_SWITCH))
    assert metrics_fingerprint(serial) == metrics_fingerprint(sharded)


def test_sharded_refuses_incompatible_scenarios():
    workload = _workload(n_flows=5)
    with pytest.raises(ValueError, match="active ShardSpec"):
        execute_sharded(BufferConfig(), workload,
                        scenario=parse_scenario("line:2"))
    from repro.scenarios import parse_engine
    hybrid = (parse_scenario("line:2").with_shard(PER_SWITCH)
              .with_engine(parse_engine("hybrid")))
    with pytest.raises(ValueError, match="hybrid engine"):
        execute_sharded(BufferConfig(), workload, scenario=hybrid)
    from repro.bufferpool import parse_pool
    pooled = (parse_scenario("line:2").with_shard(PER_SWITCH)
              .with_pool(parse_pool("static")))
    with pytest.raises(ValueError, match="shared buffer"):
        execute_sharded(BufferConfig(), workload, scenario=pooled)


def test_unknown_transport_rejected():
    spec = parse_scenario("line:2").with_shard(PER_SWITCH)
    with pytest.raises(ValueError, match="transport"):
        execute_sharded(BufferConfig(), _workload(n_flows=5),
                        scenario=spec, transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# Determinism property (satellite: hypothesis)
# ---------------------------------------------------------------------------

@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16),
       workers=st.sampled_from([None, 1, 2, 4]))
def test_shard_determinism_property(seed, workers):
    """Same seed + ShardSpec ⇒ identical merged metrics, run to run and
    across worker counts (every worker count must match workers=1)."""
    shard = ShardSpec(mode="per-switch", workers=workers)
    spec = parse_scenario("line:3").with_shard(shard)
    runs = [
        run_once(buffer_256(), _workload(n_flows=8, seed=seed), seed=seed,
                 scenario=spec)
        for _ in range(2)
    ]
    assert metrics_fingerprint(runs[0]) == metrics_fingerprint(runs[1])
    baseline = run_once(
        buffer_256(), _workload(n_flows=8, seed=seed), seed=seed,
        scenario=parse_scenario("line:3")
        .with_shard(ShardSpec(mode="per-switch", workers=1)))
    assert metrics_fingerprint(runs[0]) == metrics_fingerprint(baseline)


# ---------------------------------------------------------------------------
# Result-cache keying (sharded and serial runs never share entries)
# ---------------------------------------------------------------------------

def _job(scenario=None):
    job = SweepJob(config=buffer_256(), factory=_FACTORY, rates_mbps=(20,),
                   repetitions=1, base_seed=1, scenario=scenario)
    register_jobs([job])
    return job


def _key_of(job):
    return task_key(job, job.tasks()[0])


def test_shard_spec_participates_in_cache_key():
    line = parse_scenario("line:2")
    base = _key_of(_job(line))
    assert _key_of(_job(line)) == base                       # stable
    sharded = _key_of(_job(line.with_shard(PER_SWITCH)))
    assert sharded != base
    assert _key_of(_job(line.with_shard(PER_SWITCH.with_workers(2)))) \
        != sharded
    # Explicit off keys identically to the default.
    assert _key_of(_job(line.with_shard(OFF))) == base


def test_spec_survives_pickle():
    import pickle
    spec = parse_shard("per-switch:2")
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.cache_token() == spec.cache_token()
