"""Tests for aggregation, sweeps and the figure registry."""

from __future__ import annotations

import pytest

from repro.core import buffer_256, flow_buffer_256
from repro.experiments import (FIGURES, ExperimentData, aggregate,
                               figure_series, format_figure,
                               format_headlines, format_table_1,
                               headline_claims, run_benefits_experiment,
                               run_mechanism_experiment, sweep,
                               workload_a_factory, workload_b_factory)
from repro.experiments.cli import main as cli_main

_TINY_RATES = (20, 80)


def _tiny_sweep(config=None):
    return sweep(config or buffer_256(),
                 workload_a_factory(n_flows=30), _TINY_RATES,
                 repetitions=2, base_seed=1)


# ---------------------------------------------------------------------------
# sweep / aggregate
# ---------------------------------------------------------------------------

def test_sweep_produces_row_per_rate():
    result = _tiny_sweep()
    assert result.rates == [20, 80]
    assert all(row.repetitions == 2 for row in result.rows)
    assert result.label == "buffer-256"


def test_sweep_is_deterministic():
    first = _tiny_sweep()
    second = _tiny_sweep()
    for a, b in zip(first.rows, second.rows):
        assert a.load_up_mbps == b.load_up_mbps
        assert a.setup_delay.mean == b.setup_delay.mean


def test_sweep_pools_delays_across_repetitions():
    result = _tiny_sweep()
    # 30 flows x 2 repetitions pooled.
    assert result.rows[0].setup_delay.count == 60


def test_row_at_and_series():
    result = _tiny_sweep()
    assert result.row_at(80).rate_mbps == 80
    with pytest.raises(KeyError):
        result.row_at(33)
    series = result.series(lambda row: row.load_up_mbps)
    assert len(series) == 2


def test_aggregate_requires_runs():
    with pytest.raises(ValueError):
        aggregate(10.0, "x", [])


def test_sweep_validation():
    with pytest.raises(ValueError):
        sweep(buffer_256(), workload_a_factory(10), (10,), repetitions=0)


# ---------------------------------------------------------------------------
# experiments / figures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_benefits():
    return run_benefits_experiment(rates_mbps=_TINY_RATES, repetitions=1,
                                   n_flows=30)


@pytest.fixture(scope="module")
def tiny_mechanism():
    return run_mechanism_experiment(rates_mbps=_TINY_RATES, repetitions=1,
                                    n_flows=10, packets_per_flow=6)


def test_benefits_experiment_has_three_sweeps(tiny_benefits):
    assert set(tiny_benefits.sweeps) == {"no-buffer", "buffer-16",
                                         "buffer-256"}
    assert tiny_benefits.name == "benefits"


def test_mechanism_experiment_has_two_sweeps(tiny_mechanism):
    assert set(tiny_mechanism.sweeps) == {"buffer-256", "flow-buffer-256"}


def test_every_paper_figure_is_registered():
    expected = {"fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6", "fig7",
                "fig8", "fig9a", "fig9b", "fig10", "fig11", "fig12a",
                "fig12b", "fig13a", "fig13b"}
    assert set(FIGURES) == expected


def test_figure_specs_reference_valid_experiments():
    for spec in FIGURES.values():
        assert spec.experiment in ("benefits", "mechanism")
        assert spec.unit in ("Mbps", "%", "ms", "units")
        assert spec.labels


def test_figure_series_extraction(tiny_benefits):
    spec = FIGURES["fig2a"]
    series = figure_series(spec, tiny_benefits)
    assert set(series) == set(spec.labels)
    assert all(len(values) == 2 for values in series.values())


def test_figure_series_wrong_experiment_rejected(tiny_benefits):
    with pytest.raises(ValueError):
        figure_series(FIGURES["fig9a"], tiny_benefits)


def test_format_figure_renders_rows(tiny_benefits):
    text = format_figure(FIGURES["fig3"], tiny_benefits)
    assert "fig3" in text
    assert "no-buffer" in text
    assert "20" in text and "80" in text


def test_headline_claims_cover_both_experiments(tiny_benefits,
                                                tiny_mechanism):
    claims = headline_claims(tiny_benefits, tiny_mechanism)
    assert len(claims) == 12
    text = format_headlines(claims)
    assert "paper" in text and "measured" in text


def test_headline_claims_partial_data(tiny_benefits):
    claims = headline_claims(benefits=tiny_benefits)
    assert len(claims) == 7


def test_format_table_1_lists_devices():
    table = format_table_1()
    assert "Open vSwitch" in table
    assert "Floodlight" in table
    assert "pktgen" in table


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_table1(capsys):
    assert cli_main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_cli_rejects_unknown_target(capsys):
    assert cli_main(["fig99"]) == 2


def test_cli_runs_tiny_figure(capsys):
    code = cli_main(["fig2a", "--rates", "20", "--reps", "1",
                     "--flows", "20"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig2a" in out
    assert "buffer-256" in out


def test_cli_json_output(capsys):
    import json
    code = cli_main(["fig2a", "headline", "--rates", "20", "--reps", "1",
                     "--flows", "20", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"fig2a", "headline"}
    assert payload["fig2a"]["rates_mbps"] == [20.0]
    assert set(payload["fig2a"]["series"]) == {"no-buffer", "buffer-16",
                                               "buffer-256"}
    assert len(payload["headline"]) == 12


def test_cli_json_table1(capsys):
    import json
    assert cli_main(["table1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["table1"][0][0] == "Device"


# ---------------------------------------------------------------------------
# incomplete-run surfacing (run_once) and parallel wiring
# ---------------------------------------------------------------------------

def test_run_once_flags_incomplete_runs_and_warns():
    """An exhausted extend budget surfaces instead of silently truncating."""
    from repro.core import no_buffer
    from repro.experiments import run_once
    from repro.simkit import RandomStreams, mbps
    from repro.trafficgen import single_packet_flows

    workload = single_packet_flows(mbps(95), n_flows=100,
                                   rng=RandomStreams(5))
    with pytest.warns(RuntimeWarning, match="incomplete"):
        metrics = run_once(no_buffer(), workload, seed=5, drain=0.0,
                           max_extends=0)
    assert metrics.incomplete
    assert metrics.completed_flows < metrics.total_flows


def test_run_once_complete_run_is_not_flagged():
    from repro.experiments import run_once
    from repro.simkit import RandomStreams, mbps
    from repro.trafficgen import single_packet_flows

    workload = single_packet_flows(mbps(20), n_flows=20,
                                   rng=RandomStreams(3))
    metrics = run_once(buffer_256(), workload, seed=3)
    assert not metrics.incomplete
    assert metrics.completed_flows == metrics.total_flows


def test_sweep_workers_kwarg_matches_serial():
    serial = _tiny_sweep()
    parallel = sweep(buffer_256(), workload_a_factory(n_flows=30),
                     _TINY_RATES, repetitions=2, base_seed=1, workers=2)
    for a, b in zip(serial.rows, parallel.rows):
        assert a.load_up_mbps == b.load_up_mbps
        assert a.setup_delay == b.setup_delay


def test_experiment_attaches_engine_report():
    data = run_benefits_experiment(rates_mbps=(20,), repetitions=1,
                                   n_flows=20, workers=1)
    assert data.report is not None
    assert data.report.ok
    assert data.report.total_tasks == 3      # three mechanisms x 1 x 1


def test_derive_seed_is_exported():
    from repro.experiments import derive_seed
    assert derive_seed(0, 20, 1) == 20 * 1_009 + 1


# ---------------------------------------------------------------------------
# CLI: version, workers, failure exit codes
# ---------------------------------------------------------------------------

def test_cli_version_flag(capsys):
    import repro
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_cli_workers_flag_smoke(capsys):
    code = cli_main(["fig2a", "--rates", "20", "--reps", "1",
                     "--flows", "20", "--workers", "2"])
    assert code == 0
    assert "fig2a" in capsys.readouterr().out


def test_cli_exits_nonzero_on_partial_failure(capsys, monkeypatch):
    from repro.experiments import cli as cli_module
    from repro.parallel import EngineReport, TaskFailure

    def fake_benefits(**kwargs):
        data = run_benefits_experiment(rates_mbps=(20,), repetitions=1,
                                       n_flows=10)
        data.report = EngineReport(
            total_tasks=3, executed=2, cached=0, workers=2,
            wall_seconds=0.1,
            failures=[TaskFailure(label="no-buffer", rate_mbps=20.0,
                                  rep=0, seed=1, attempts=3,
                                  error="RuntimeError: boom")])
        return data

    monkeypatch.setattr(cli_module, "run_benefits_experiment",
                        fake_benefits)
    code = cli_main(["fig2a", "--rates", "20", "--reps", "1"])
    assert code == 1
    assert "FAILED" in capsys.readouterr().err


def test_cli_exits_nonzero_when_experiment_raises(capsys, monkeypatch):
    from repro.experiments import cli as cli_module

    def explode(**kwargs):
        raise RuntimeError("sweep exploded")

    monkeypatch.setattr(cli_module, "run_benefits_experiment", explode)
    code = cli_main(["fig2a", "--rates", "20", "--reps", "1"])
    assert code == 1
    assert "sweep exploded" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI: scenario selection and the path-length figure
# ---------------------------------------------------------------------------

def test_cli_scenario_flag_runs_figure_on_line_topology(capsys):
    code = cli_main(["fig2a", "--rates", "20", "--reps", "1",
                     "--flows", "15", "--scenario", "line:2"])
    assert code == 0
    assert "fig2a" in capsys.readouterr().out


def test_cli_switches_flag_is_line_shorthand(capsys):
    import json
    args = ["fig2a", "--rates", "20", "--reps", "1", "--flows", "15",
            "--json"]
    assert cli_main(args + ["--scenario", "line:2"]) == 0
    via_scenario = json.loads(capsys.readouterr().out)
    assert cli_main(args + ["--switches", "2"]) == 0
    via_switches = json.loads(capsys.readouterr().out)
    assert via_switches == via_scenario


def test_cli_scenario_and_switches_are_mutually_exclusive(capsys):
    code = cli_main(["fig2a", "--scenario", "line:2", "--switches", "3"])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_rejects_malformed_scenario(capsys):
    assert cli_main(["fig2a", "--scenario", "bogus:2"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
    assert cli_main(["fig2a", "--scenario", "line"]) == 2
    assert "needs a size" in capsys.readouterr().err


def test_cli_figpath_renders_table(capsys):
    code = cli_main(["figpath", "--rates", "20", "--reps", "1",
                     "--workers", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "control overhead vs path length" in out
    for label in ("buffer-256", "flow-buffer-256"):
        assert label in out


def test_cli_figpath_json_payload(capsys):
    import json
    code = cli_main(["figpath", "--rates", "20", "--reps", "1",
                     "--workers", "2", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    fig = payload["figpath"]
    assert fig["rate_mbps"] == 20.0
    assert fig["lengths"] == [1, 2, 4]
    assert set(fig["series"]) == {"packet_ins_per_run",
                                  "control_load_up_mbps",
                                  "control_load_down_mbps",
                                  "setup_delay_ms"}
    for series in fig["series"].values():
        assert set(series) == {"buffer-256", "flow-buffer-256"}
        assert all(len(points) == 3 for points in series.values())
