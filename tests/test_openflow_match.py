"""Tests for the match structure."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.openflow import Match
from repro.packets import udp_packet


def _packet(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1000,
            dst_port=2000):
    return udp_packet("00:00:00:00:00:01", "00:00:00:00:00:02",
                      src_ip, dst_ip, src_port, dst_port)


def test_match_all_matches_everything():
    match = Match()
    assert match.is_match_all
    assert match.matches(_packet(), in_port=1)
    assert match.matches(_packet("1.2.3.4", "5.6.7.8", 9, 10), in_port=99)


def test_exact_match_matches_only_its_packet():
    packet = _packet()
    match = Match.exact_from_packet(packet, in_port=1)
    assert match.matches(packet, in_port=1)
    assert not match.matches(packet, in_port=2)
    assert not match.matches(_packet(src_ip="10.0.0.99"), in_port=1)
    assert not match.matches(_packet(src_port=1001), in_port=1)


def test_single_field_match():
    match = Match(ip_dst="10.0.0.2")
    assert match.matches(_packet(), in_port=5)
    assert not match.matches(_packet(dst_ip="10.0.0.3"), in_port=5)


def test_port_only_match():
    match = Match(tp_dst=2000)
    assert match.matches(_packet(), in_port=1)
    assert not match.matches(_packet(dst_port=2001), in_port=1)


def test_wildcard_count():
    assert Match().wildcard_count == 9
    packet = _packet()
    assert Match.exact_from_packet(packet, in_port=1).wildcard_count == 0
    assert Match(ip_src="10.0.0.1").wildcard_count == 8


def test_covers_relation():
    packet = _packet()
    exact = Match.exact_from_packet(packet, in_port=1)
    wide = Match(ip_dst="10.0.0.2")
    assert Match().covers(exact)
    assert wide.covers(exact)
    assert not exact.covers(wide)
    assert exact.covers(exact)


def test_covers_with_differing_values():
    a = Match(ip_src="10.0.0.1")
    b = Match(ip_src="10.0.0.2")
    assert not a.covers(b)
    assert not b.covers(a)


def test_str_rendering():
    assert str(Match()) == "Match(*)"
    assert "ip_src=10.0.0.1" in str(Match(ip_src="10.0.0.1"))


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
       st.integers(0, 64), st.integers(0, 64))
def test_exact_from_packet_always_matches_its_packet(sport, dport, a, b):
    packet = _packet(src_ip=f"10.0.{a}.{b}", src_port=sport, dst_port=dport)
    match = Match.exact_from_packet(packet, in_port=3)
    assert match.matches(packet, in_port=3)


@given(st.integers(0, 255))
def test_wildcarded_field_never_blocks(octet):
    packet = _packet(src_ip=f"10.9.9.{octet}")
    match = Match(ip_dst="10.0.0.2")   # src wildcarded
    assert match.matches(packet, in_port=1)
