"""Tests for the quoted-statistics comparison module."""

from __future__ import annotations

import pytest

from repro.experiments import (FIGURES, PAPER_QUOTED, compare_quoted,
                               format_quoted, run_benefits_experiment,
                               run_mechanism_experiment)
from repro.experiments.paper_data import QuotedValue, _measured_statistic


def test_quoted_values_reference_registered_figures():
    for quoted in PAPER_QUOTED:
        assert quoted.figure_id in FIGURES
        spec = FIGURES[quoted.figure_id]
        assert quoted.label in spec.labels, (
            f"{quoted.figure_id}: {quoted.label} not in {spec.labels}")


def test_quoted_units_match_figure_units():
    for quoted in PAPER_QUOTED:
        assert quoted.unit == FIGURES[quoted.figure_id].unit


def test_quoted_corpus_covers_both_experiments():
    experiments = {FIGURES[q.figure_id].experiment for q in PAPER_QUOTED}
    assert experiments == {"benefits", "mechanism"}
    assert len(PAPER_QUOTED) >= 40


def test_measured_statistic_extractors():
    series = [1.0, 3.0, 2.0]
    rates = [10.0, 20.0, 30.0]
    assert _measured_statistic(series, rates, "mean") == pytest.approx(2.0)
    assert _measured_statistic(series, rates, "max") == 3.0
    assert _measured_statistic(series, rates, "at:20") == 3.0
    with pytest.raises(ValueError):
        _measured_statistic(series, rates, "median")
    with pytest.raises(ValueError):
        _measured_statistic(series, rates, "at:99")


@pytest.fixture(scope="module")
def tiny_data():
    benefits = run_benefits_experiment(rates_mbps=(35, 95), repetitions=1,
                                       n_flows=40)
    mechanism = run_mechanism_experiment(rates_mbps=(35, 95),
                                         repetitions=1, n_flows=10,
                                         packets_per_flow=6)
    return benefits, mechanism


def test_compare_quoted_full_coverage(tiny_data):
    benefits, mechanism = tiny_data
    comparisons = compare_quoted(benefits, mechanism)
    assert len(comparisons) == len(PAPER_QUOTED)
    # Every quote resolvable at this sweep gets a measurement.
    measured = [c for c in comparisons if c.measured is not None]
    assert len(measured) == len(PAPER_QUOTED)
    for comparison in measured:
        assert comparison.ratio is not None


def test_compare_quoted_partial_data(tiny_data):
    benefits, _ = tiny_data
    comparisons = compare_quoted(benefits=benefits, mechanism=None)
    benefit_quotes = [c for c in comparisons
                      if FIGURES[c.quoted.figure_id].experiment
                      == "benefits"]
    mechanism_quotes = [c for c in comparisons
                        if FIGURES[c.quoted.figure_id].experiment
                        == "mechanism"]
    assert all(c.measured is not None for c in benefit_quotes)
    assert all(c.measured is None for c in mechanism_quotes)


def test_compare_quoted_missing_rate(tiny_data):
    benefits, mechanism = tiny_data
    # A sweep without 95 Mbps cannot answer the "at:95" quotes.
    partial = run_benefits_experiment(rates_mbps=(35,), repetitions=1,
                                      n_flows=20)
    comparisons = compare_quoted(partial, None)
    at95 = [c for c in comparisons if c.quoted.statistic == "at:95"
            and FIGURES[c.quoted.figure_id].experiment == "benefits"]
    assert at95 and all(c.measured is None for c in at95)


def test_format_quoted_renders_all_rows(tiny_data):
    benefits, mechanism = tiny_data
    text = format_quoted(compare_quoted(benefits, mechanism))
    assert text.count("\n") == len(PAPER_QUOTED)   # header + one per quote
    assert "IV.D" in text and "V.B.5" in text


def test_ratio_semantics():
    from repro.experiments.paper_data import QuotedComparison
    quoted = QuotedValue("fig5", "no-buffer", "mean", 2.0, "ms", "IV.D")
    assert QuotedComparison(quoted, 1.0).ratio == pytest.approx(0.5)
    assert QuotedComparison(quoted, None).ratio is None
