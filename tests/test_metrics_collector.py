"""Tests for the MetricsSuite snapshot windows and report formatting."""

from __future__ import annotations

import pytest

from repro.core import buffer_256
from repro.experiments import (build_testbed, format_experiment,
                               run_benefits_experiment)
from repro.simkit import RandomStreams, mbps
from repro.trafficgen import single_packet_flows


def _run_testbed(n_flows=10, rate=40, seed=80):
    workload = single_packet_flows(mbps(rate), n_flows=n_flows,
                                   rng=RandomStreams(seed))
    testbed = build_testbed(buffer_256(), workload, seed=seed)
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    return testbed, workload


def test_snapshot_rejects_empty_window():
    testbed, _ = _run_testbed()
    with pytest.raises(ValueError):
        testbed.metrics.snapshot(0.5, 0.5)
    testbed.shutdown()


def test_snapshot_load_window_excludes_late_traffic():
    testbed, workload = _run_testbed()
    send_end = 0.02 + workload.duration
    full = testbed.metrics.snapshot(0.02, 1.0, load_end=1.0)
    tight = testbed.metrics.snapshot(0.02, 1.0, load_end=send_end + 0.05)
    # The tight window normalizes over the send period: a higher rate.
    assert tight.control_load_up_mbps > full.control_load_up_mbps
    # But the same message counts (counts are not windowed).
    assert tight.packet_in_count == full.packet_in_count
    testbed.shutdown()


def test_snapshot_usage_is_windowed_mean():
    testbed, workload = _run_testbed()
    active = testbed.metrics.snapshot(0.02, 0.02 + workload.duration + 0.02)
    idle = testbed.metrics.snapshot(0.9, 1.0)
    # The active window shows real work; the idle tail only baseline.
    assert (active.switch_usage_percent
            > idle.switch_usage_percent)
    assert idle.switch_usage_percent == pytest.approx(
        testbed.switch.config.baseline_usage_percent, abs=1.0)
    testbed.shutdown()


def test_redundant_packet_in_ratio():
    testbed, _ = _run_testbed()
    snapshot = testbed.metrics.snapshot(0.02, 1.0)
    assert snapshot.redundant_packet_in_ratio == pytest.approx(1.0)
    testbed.shutdown()


def test_format_experiment_renders_all_benefit_figures():
    data = run_benefits_experiment(rates_mbps=(30,), repetitions=1,
                                   n_flows=15)
    text = format_experiment(data)
    for figure_id in ("fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6",
                      "fig7", "fig8"):
        assert figure_id in text
    filtered = format_experiment(data, figure_ids=("fig3",))
    assert "fig3" in filtered and "fig2a" not in filtered
