"""Fault-injection tests: spec semantics, determinism, cache keying,
and the re-request path the faults exist to exercise."""

from __future__ import annotations

import dataclasses

import pytest

from repro.controllersim import ControllerConfig
from repro.core import BufferConfig, buffer_256, flow_buffer_256
from repro.experiments import (TestbedCalibration, build_testbed, run_once,
                               sweep, workload_a_factory)
from repro.faults import (FaultSpec, NO_FAULTS, install_faults, loss_fault,
                          parse_fault)
from repro.openflow import (ErrorMsg, ErrorType, OutputAction, PacketIn,
                            PacketOut)
from repro.parallel import (SweepJob, parallel_sweep, register_jobs,
                            task_key)
from repro.simkit import RandomStreams, mbps
from repro.switchsim import SwitchConfig
from repro.trafficgen import single_packet_flows

_FACTORY = workload_a_factory(n_flows=25)


def _workload(n_flows=10, seed=9, rate=20):
    return single_packet_flows(mbps(rate), n_flows=n_flows,
                               rng=RandomStreams(seed))


# ---------------------------------------------------------------------------
# FaultSpec semantics
# ---------------------------------------------------------------------------

def test_null_spec_identity():
    assert NO_FAULTS.is_null
    assert NO_FAULTS.name == "none"
    assert loss_fault(0.0).is_null
    assert FaultSpec() == NO_FAULTS
    assert not loss_fault(0.01).is_null
    assert loss_fault(0.01).name == "loss:0.01"


def test_loss_fault_is_symmetric():
    spec = loss_fault(0.02)
    assert spec.loss_up == spec.loss_down == 0.02


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        FaultSpec(loss_up=1.5)
    with pytest.raises(ValueError):
        FaultSpec(dup_down=-0.1)
    with pytest.raises(ValueError):
        FaultSpec(jitter_up=-0.001)
    with pytest.raises(ValueError):
        FaultSpec(stall_windows=((2.0, 1.0),))     # end <= start
    with pytest.raises(ValueError):
        FaultSpec(stall_windows=((-1.0, 1.0),))    # negative start
    with pytest.raises(ValueError):
        FaultSpec(ageout=0.0)
    with pytest.raises(ValueError):
        FaultSpec(ageout_interval=-1.0)


def test_stall_windows_canonicalized_and_queried():
    a = FaultSpec(stall_windows=((2.0, 3.0), (0.5, 1.0)))
    b = FaultSpec(stall_windows=((0.5, 1.0), (2.0, 3.0)))
    assert a == b
    assert hash(a) == hash(b)
    assert a.cache_token() == b.cache_token()
    assert a.stall_windows == ((0.5, 1.0), (2.0, 3.0))
    assert a.stalled_at(0.7)
    assert a.stalled_at(2.0)       # start inclusive
    assert not a.stalled_at(1.0)   # end exclusive
    assert not a.stalled_at(1.5)


def test_parse_fault_grammar():
    spec = parse_fault("loss=0.01")
    assert spec == loss_fault(0.01)
    spec = parse_fault("loss_up=0.02,jitter=0.0005,stall=0.5:0.8+1.2:1.4,"
                       "ageout=0.05")
    assert spec.loss_up == 0.02 and spec.loss_down == 0.0
    assert spec.jitter_up == spec.jitter_down == 0.0005
    assert spec.stall_windows == ((0.5, 0.8), (1.2, 1.4))
    assert spec.ageout == 0.05
    with pytest.raises(ValueError):
        parse_fault("loss")                        # missing '='
    with pytest.raises(ValueError):
        parse_fault("frobnicate=1")                # unknown key
    with pytest.raises(ValueError):
        parse_fault("stall=0.5")                   # window needs start:end
    with pytest.raises(ValueError):
        parse_fault("loss=2.0")                    # invalid probability


def test_cache_token_distinguishes_every_knob():
    tokens = {
        NO_FAULTS.cache_token(),
        loss_fault(0.01).cache_token(),
        loss_fault(0.02).cache_token(),
        FaultSpec(loss_up=0.01).cache_token(),
        FaultSpec(loss_down=0.01).cache_token(),
        FaultSpec(dup_up=0.1).cache_token(),
        FaultSpec(jitter_down=0.001).cache_token(),
        FaultSpec(stall_windows=((1.0, 2.0),)).cache_token(),
        FaultSpec(ageout=0.5).cache_token(),
        FaultSpec(ageout=0.5, ageout_interval=0.1).cache_token(),
    }
    assert len(tokens) == 10


def test_spec_survives_pickle():
    import pickle
    spec = parse_fault("loss=0.01,dup_down=0.1,stall=1:2")
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.cache_token() == spec.cache_token()


# ---------------------------------------------------------------------------
# Result-cache keying (regression: lossy runs must never poison
# faultless lookups)
# ---------------------------------------------------------------------------

def _job(faults=None):
    job = SweepJob(config=buffer_256(), factory=_FACTORY, rates_mbps=(20,),
                   repetitions=1, base_seed=1, faults=faults)
    register_jobs([job])
    return job


def _key_of(job):
    return task_key(job, job.tasks()[0])


def test_fault_spec_participates_in_cache_key():
    base = _key_of(_job())
    assert _key_of(_job()) == base                          # stable
    assert _key_of(_job(faults=NO_FAULTS)) == base          # None ≡ null
    lossy = _key_of(_job(faults=loss_fault(0.01)))
    assert lossy != base
    assert _key_of(_job(faults=loss_fault(0.02))) != lossy
    assert _key_of(_job(faults=FaultSpec(
        stall_windows=((1.0, 2.0),)))) != base


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def _snapshot_dict(metrics):
    """RunMetrics as a comparable dict (TimeSeries has no __eq__)."""
    def norm(value):
        if hasattr(value, "times") and hasattr(value, "values"):
            return (value.times, value.values)
        return value
    return {key: norm(value)
            for key, value in dataclasses.asdict(metrics).items()}


def test_run_once_reproducible_under_faults():
    spec = parse_fault("loss=0.05,dup_down=0.2,jitter=0.0004")
    runs = []
    for _ in range(2):
        rng = RandomStreams(11)
        workload = _FACTORY(mbps(30), rng)
        runs.append(run_once(flow_buffer_256(), workload, seed=11,
                             faults=spec))
    assert _snapshot_dict(runs[0]) == _snapshot_dict(runs[1])


def test_serial_vs_parallel_identical_with_faults():
    spec = loss_fault(0.02)
    kwargs = dict(rates_mbps=(20.0, 40.0), repetitions=2, base_seed=5)
    serial = sweep(flow_buffer_256(), _FACTORY, faults=spec, **kwargs)
    parallel = parallel_sweep(flow_buffer_256(), _FACTORY, workers=2,
                              faults=spec, **kwargs)
    assert [dataclasses.asdict(r) for r in serial.rows] \
        == [dataclasses.asdict(r) for r in parallel.rows]


def test_none_and_null_spec_run_identically():
    runs = []
    for faults in (None, NO_FAULTS):
        rng = RandomStreams(3)
        workload = _FACTORY(mbps(20), rng)
        runs.append(run_once(buffer_256(), workload, seed=3, faults=faults))
    assert _snapshot_dict(runs[0]) == _snapshot_dict(runs[1])


# ---------------------------------------------------------------------------
# Injection behavior
# ---------------------------------------------------------------------------

def test_loss_triggers_retries_with_full_completion():
    """The headline resilience claim: at 1% control-channel loss the
    flow-granularity mechanism re-requests lost packet_ins and still
    completes >= 99% of flow setups."""
    spec = loss_fault(0.01)
    total = completed = retries = 0
    for seed in (42, 43, 44):
        rng = RandomStreams(seed)
        workload = workload_a_factory(n_flows=150)(mbps(30), rng)
        metrics = run_once(flow_buffer_256(), workload, seed=seed,
                           faults=spec)
        total += metrics.total_flows
        completed += metrics.completed_flows
        retries += metrics.packet_in_retry_count
    assert retries > 0
    assert completed / total >= 0.99


def test_fault_events_and_registry_counters():
    testbed = build_testbed(buffer_256(), _workload(n_flows=20, rate=40),
                            seed=8)
    install_faults(testbed, loss_fault(0.5))
    events = []
    testbed.switch.events.on(
        "fault_injected",
        lambda t, kind, direction, message: events.append((kind, direction)))
    testbed.controller.start_handshake()
    testbed.pktgen.start(at=0.02)
    testbed.sim.run(until=1.0)
    dropped = sum(1 for kind, _ in events if kind == "dropped")
    assert dropped > 0
    counted = sum(
        testbed.registry.counter("faults_dropped_total", switch="ovs",
                                 direction=direction).value
        for direction in ("up", "down"))
    assert counted == dropped
    testbed.shutdown()


def test_null_spec_installs_nothing():
    testbed = build_testbed(buffer_256(), _workload(n_flows=2), seed=8)
    install_faults(testbed, None)
    install_faults(testbed, NO_FAULTS)
    assert testbed.channel._fault_to_controller is None
    assert testbed.channel._fault_to_switch is None
    testbed.shutdown()


def test_duplicated_packet_out_yields_buffer_unknown_error():
    """dup_down duplicates every controller→switch message; the second
    copy of each packet_out names an already-released unit and must
    surface as a BUFFER_UNKNOWN ErrorMsg, not a crash."""
    testbed = build_testbed(buffer_256(), _workload(n_flows=2), seed=12)
    received = []
    testbed.channel.bind_controller(received.append)
    install_faults(testbed, FaultSpec(dup_down=1.0))
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=0.5)
    packet_ins = [m for m in received if isinstance(m, PacketIn)]
    assert len(packet_ins) == 2
    for message in packet_ins:
        testbed.channel.send_to_switch(
            PacketOut(actions=(OutputAction(2),),
                      buffer_id=message.buffer_id, in_port=1))
    testbed.sim.run(until=1.0)
    # Each packet_out arrived twice; the copy hit a freed unit.
    assert len(testbed.host2.received) == 2
    errors = [m for m in received if isinstance(m, ErrorMsg)]
    assert len(errors) == 2
    assert all(e.error_type is ErrorType.BUFFER_UNKNOWN for e in errors)
    assert testbed.switch.agent.errors_sent == 2
    testbed.shutdown()


def test_stall_window_forces_disconnect_then_keepalive_reconnect():
    """A controller stall long enough to starve the keepalive probe
    flips the switch to disconnected; once the window ends the next
    probe's EchoReply restores the connection."""
    calibration = TestbedCalibration(
        switch=SwitchConfig(connection_probe_interval=0.2,
                            connection_timeout=0.5, buffer_ageout=0.0),
        controller=ControllerConfig())
    testbed = build_testbed(buffer_256(), _workload(n_flows=1), seed=13,
                            calibration=calibration)
    install_faults(testbed, FaultSpec(stall_windows=((1.0, 2.5),)))
    disconnects, reconnects = [], []
    testbed.switch.events.on("controller_disconnected",
                             lambda t: disconnects.append(t))
    testbed.switch.events.on("controller_reconnected",
                             lambda t: reconnects.append(t))
    testbed.controller.start_handshake()
    testbed.sim.run(until=4.0)
    assert len(disconnects) == 1
    assert 1.2 <= disconnects[0] <= 2.0       # timeout into the stall
    assert len(reconnects) == 1
    assert 2.5 <= reconnects[0] <= 3.0        # first probe after the window
    assert testbed.switch.agent.connected
    testbed.shutdown()


def test_forced_ageout_expires_units_and_late_timer_is_clean():
    """FaultSpec.ageout forces expiry before the (long) retry timer
    fires; the timer then finds its unit gone and must clean up without
    abandoning or crashing (the timer-after-ageout race)."""
    config = BufferConfig(mechanism="flow-granularity", capacity=64,
                          retry_timeout=1.0, max_retries=2)
    testbed = build_testbed(config, _workload(n_flows=3), seed=14)
    testbed.channel.bind_controller(lambda message: None)   # mute
    install_faults(testbed, FaultSpec(ageout=0.05, ageout_interval=0.02))
    aged = []
    testbed.switch.events.on("buffer_aged_out",
                             lambda t, bid: aged.append(bid))
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=2.0)     # past the 1.0 s retry timers
    mechanism = testbed.mechanism
    assert len(aged) == 3                      # every unit force-expired
    assert mechanism.units_in_use == 0
    assert mechanism.flows_abandoned == 0      # ageout, not retry give-up
    assert mechanism._pending == {}            # late timers cleaned up
    assert mechanism.buffer.total_released == 0
    testbed.shutdown()


def test_forced_rearm_from_ageout_listener_keeps_one_sweep_chain():
    """Bugfix regression: force_buffer_ageout() invoked from inside a
    buffer_aged_out listener must not leave two live sweep chains.  The
    old sweep re-armed unconditionally after emitting, overwriting the
    handle the forced re-arm had just installed — both chains stayed
    live (double expiry) and shutdown() could cancel only one."""
    config = BufferConfig(mechanism="flow-granularity", capacity=64,
                          retry_timeout=10.0, max_retries=1)
    testbed = build_testbed(config, _workload(n_flows=1), seed=16)
    testbed.channel.bind_controller(lambda message: None)   # mute
    agent = testbed.switch.agent
    sweeps = []
    inner = agent._ageout_sweep

    def counting_sweep():
        sweeps.append(testbed.sim.now)
        inner()

    agent._ageout_sweep = counting_sweep
    forced = []

    def rearm_under_pressure(time, buffer_id):
        if not forced:
            forced.append(time)
            agent.force_buffer_ageout(0.05, interval=0.025)

    testbed.switch.events.on("buffer_aged_out", rearm_under_pressure)
    testbed.pktgen.start(at=0.01)
    agent.force_buffer_ageout(0.04, interval=0.02)
    testbed.sim.run(until=1.0)
    assert forced, "the ageout listener never fired"
    # Exactly one live chain: after the forced re-arm the sweep cadence
    # is one call per 25ms — two interleaved chains would double it
    # (coincident timestamps, zero deltas).
    after = [time for time in sweeps if time > forced[0]]
    deltas = [b - a for a, b in zip(after, after[1:])]
    assert deltas and all(d == pytest.approx(0.025) for d in deltas), deltas
    testbed.shutdown()


def test_retry_exhaustion_counts_drops_not_releases():
    """Bugfix regression: abandoning a flow after max_retries must count
    its packets as abandoned drops, never as releases."""
    config = BufferConfig(mechanism="flow-granularity", capacity=64,
                          retry_timeout=0.02, max_retries=2)
    testbed = build_testbed(config, _workload(n_flows=3), seed=15)
    testbed.channel.bind_controller(lambda message: None)   # mute
    testbed.pktgen.start(at=0.01)
    testbed.sim.run(until=1.0)
    mechanism = testbed.mechanism
    assert mechanism.flows_abandoned == 3
    assert mechanism.buffer.total_released == 0      # the bug inflated this
    assert mechanism.buffer.abandoned_drops == 3
    assert mechanism.units_in_use == 0
    testbed.shutdown()
